"""Two-phase cycle-based RTL simulator.

Each cycle:

1. **settle** -- evaluate combinational logic until no wire changes value
   (divergence indicates a combinational loop and raises
   :class:`~repro.errors.SimulationError`);
2. **sample** -- the waveform recorder captures the settled wire values
   (this is what the paper's waveform figures show);
3. **tick** -- every module's clock edge updates its registers.

Three settle engines are available:

* ``engine="levelized"`` (default) -- the change-driven, levelized
  scheduler of :mod:`repro.rtl.scheduler`: dependency-ordered evaluation,
  dirty-set propagation, incremental toggle accounting.
* ``engine="kernel"`` -- the levelized topology exec-compiled into a
  per-topology cycle kernel (:mod:`repro.rtl.kernel`): ``run(n)``
  executes N cycles in one generated loop with straight-line
  evaluation, fused activity accounting, columnar waveform sampling
  and no per-cycle method dispatch.  Falls back to the levelized
  per-cycle path automatically whenever the fast path cannot apply
  (monitors, ``run_until``, ``step``, unhinted modules, mid-run
  ``add``, detached simulators) -- observables are bit-identical
  either way.
* ``engine="brute"`` -- the original bounded fixpoint that re-evaluates
  every module and snapshots every wire per iteration.  Kept as the
  semantic reference: the equivalence tests pin the other engines
  against it, and ``benchmarks/bench_simulator.py`` measures the
  speedups.

The simulator also exposes an *activity* counter per wire (toggle
counts), which feeds the dynamic-power estimate of the synthesis cost
model.  Counts are keyed by ``(module name, wire name)`` so same-named
wires in different modules never merge (the seed keyed them by bare wire
name, skewing the power estimate).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import SimulationError, WatchdogTimeout
from .module import Module
from .scheduler import CombScheduler
from .waveform import Waveform

#: the available settle engines, in (reference, default, fastest)
#: order; the config layer (:mod:`repro.api`) validates against this
#: tuple
ENGINES = ("brute", "levelized", "kernel")


class Simulator:
    def __init__(self, name: str = "sim", max_settle_iters: int = 64,
                 engine: str = "levelized"):
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r} (use 'levelized', 'kernel' "
                f"or 'brute')"
            )
        self.name = name
        self.engine = engine
        self.modules: List[Module] = []
        self.cycle = 0
        self.max_settle_iters = max_settle_iters
        self.waveform = Waveform()
        self.scheduler = CombScheduler(self)
        self._monitors: List[Callable[[int], None]] = []
        # fault-injection hook (repro.inject): called with the simulator
        # after settle and before activity commit/sample/tick, i.e. at
        # the exact point where a transient upset lands on settled wires
        # or on register state about to be consumed by tick().  While
        # armed the compiled cycle-kernel fast path stands down (the
        # hook needs every cycle); it re-arms when the hook disarms.
        self._inject_hook: Optional[Callable[["Simulator"], None]] = None
        self._prev_values: Dict[int, int] = {}   # brute engine only
        self._adopted_activity: Dict[Tuple[str, str], int] = None
        # kernel engine only: the compiled cycle kernel for the current
        # (topology, watch count) pair.  None means no usable kernel --
        # either never compiled or the topology is unsupported; the
        # distinction lives in _kernel_key, which matching prevents a
        # re-plan until the topology or watch count changes
        self._kernel = None
        self._kernel_key = None

    def add(self, module: Module) -> Module:
        self.modules.append(module)
        self.scheduler.invalidate()
        return module

    def watch(self, wire, label: str = ""):
        """Record a wire in the waveform output."""
        self.waveform.watch(wire, label)

    def on_cycle(self, fn: Callable[[int], None]):
        """Register a monitor callback invoked after each settle phase.

        While any monitor is registered the compiled cycle-kernel fast
        path stands down (:meth:`_kernel_advance` needs whole-run
        batches; monitors need every cycle) -- detach with
        :meth:`remove_monitor` to re-arm it."""
        self._monitors.append(fn)

    def remove_monitor(self, fn: Callable[[int], None]) -> bool:
        """Detach a monitor registered via :meth:`on_cycle`; returns
        whether it was attached."""
        try:
            self._monitors.remove(fn)
            return True
        except ValueError:
            return False

    # ------------------------------------------------------------------
    def _all_wires(self):
        for m in self.modules:
            yield from m.wires()

    def settle(self) -> int:
        """Run combinational logic to a fixpoint; returns the number of
        evaluation passes taken."""
        if self.engine == "brute":
            return self._settle_brute()
        return self.scheduler.settle()

    def _settle_brute(self):
        """The seed algorithm: full re-evaluation with dict snapshots."""
        for iteration in range(self.max_settle_iters):
            before = {id(w): w.value for w in self._all_wires()}
            for m in self.modules:
                m.eval_comb()
            after = {id(w): w.value for w in self._all_wires()}
            if before == after:
                return iteration + 1
        raise SimulationError(
            f"combinational logic did not settle in "
            f"{self.max_settle_iters} iterations at cycle {self.cycle}"
        )

    def adopt_remote(self, cycle: int,
                     activity: Dict[Tuple[str, str], int],
                     samples: Dict[str, List[int]],
                     resumed_from: int = 0) -> None:
        """Adopt the observable state of a run that happened in another
        process (the batch runner's ``process`` executor): cycle count,
        per-wire toggle counts, waveform samples.

        An already-advanced simulator may adopt only a remote run that
        *resumed from its own snapshot* (``resumed_from`` equals the
        local cycle): the remote observables then cover the local
        prefix bit-for-bit, so adoption loses nothing.

        The local module registers were never advanced (or are now
        behind the adopted run), so the simulator becomes *detached*:
        further ``run``/``step`` calls raise instead of silently mixing
        fresh local state into the adopted results.
        """
        if self.cycle != 0 and self.cycle != resumed_from:
            raise SimulationError(
                f"cannot adopt a remote run into {self.name!r}: the "
                f"local simulator advanced to cycle {self.cycle}, but "
                f"the remote run resumed from cycle {resumed_from} -- "
                f"its observables would not cover the local prefix"
            )
        self.cycle = cycle
        self._adopted_activity = dict(activity)
        self.waveform.samples = {k: list(v) for k, v in samples.items()}

    @property
    def detached(self) -> bool:
        """True once :meth:`adopt_remote` replaced local execution."""
        return self._adopted_activity is not None

    def step(self):
        """Advance one full clock cycle.

        Always the interpreted path, even under ``engine="kernel"``:
        single-cycle callers (``run_until`` predicates, test benches
        poking wires between steps, monitor-driven runs) re-dispatch
        every cycle, which is exactly the overhead the kernel exists to
        amortize -- batched cycles go through :meth:`run` instead."""
        if self.detached:
            raise SimulationError(
                f"simulator {self.name!r} adopted a remote run; its "
                f"local registers never advanced, so it cannot step "
                f"further (rebuild the scenario to keep simulating)"
            )
        self.settle()
        hook = self._inject_hook
        if hook is not None:
            hook(self)
        # toggle counting for the power model: the scheduler tracks which
        # wires changed during settle, no full snapshot needed
        if self.engine == "brute":
            self._brute_activity()
        else:
            self.scheduler.commit_activity()
        self.waveform.sample(self.cycle)
        for fn in self._monitors:
            fn(self.cycle)
        for m in self.modules:
            m.tick()
        self.cycle += 1

    def _brute_activity(self):
        """The seed's per-step toggle accounting: a full pass over every
        wire with a dict lookup per wire.  Kept verbatim (modulo the
        per-module keying fix) so benchmarks measure the seed engine's
        true cost; results land in the scheduler's counters so both
        engines report identically."""
        sch = self.scheduler
        sch.sync_registry()
        prev_values = self._prev_values
        toggles = sch._toggles
        values = sch._values
        prev_settled = sch._prev_settled
        for w, wi in sch._scan_all:
            v = w.value
            prev = prev_values.get(id(w))
            if prev is not None and prev != v:
                toggles[wi] += (prev ^ v).bit_count()
            prev_values[id(w)] = v
            values[wi] = v
            prev_settled[wi] = v

    def run(self, cycles: int):
        if self.engine != "kernel":
            for _ in range(cycles):
                self.step()
            return
        remaining = cycles
        while remaining > 0:
            remaining -= self._kernel_advance(remaining)
            if remaining > 0:
                # the fast path disengaged (monitors, unsupported
                # topology, pending scheduler state, mid-run add):
                # one interpreted cycle, then try the kernel again
                self.step()
                remaining -= 1

    def _kernel_advance(self, cycles: int) -> int:
        """Run up to ``cycles`` cycles through the compiled cycle
        kernel; returns the number actually completed (0 when the fast
        path cannot engage -- the caller falls back to :meth:`step`)."""
        if self.detached or self._monitors or self._inject_hook is not None:
            return 0
        sch = self.scheduler
        sch._ensure_built()
        if sch._needs_prime or sch._changed:
            # an unprimed activity baseline (first cycle after build)
            # or changed wires pending from a standalone settle() --
            # the interpreted commit owns those paths
            return 0
        key = (sch._topo_key, len(self.waveform._watched))
        if self._kernel_key != key:
            from .kernel import build_plan, kernel_for

            self._kernel = kernel_for(build_plan(self))
            self._kernel_key = key
        kern = self._kernel
        if kern is None:
            return 0
        # late watches: pad once here so the kernel's per-cycle sample
        # is a plain append
        for _label, _wire, series in self.waveform._watched:
            if len(series) < self.cycle:
                series.extend([0] * (self.cycle - len(series)))
        return kern.fn(self, sch, cycles)

    def snapshot(self):
        """Capture the complete cycle-boundary state (wire values,
        toggle counters, pending scheduler bookkeeping, module
        registers/latches/queues, waveform series, cycle number) as a
        picklable :class:`~repro.rtl.snapshot.Snapshot`.

        Engine-portable: a snapshot taken under any engine restores
        into any other (the equivalence suites pin the engines to
        identical boundary states), and restoring leaves the compiled
        cycle kernel's fast path armed -- its flat locals are rebound
        from the scheduler columns at every kernel entry."""
        from .snapshot import capture

        return capture(self)

    def restore(self, snap):
        """Restore a :meth:`snapshot` into this simulator (in place, or
        into a fresh deterministic rebuild of the same scenario); the
        resumed run is bit-identical to one that never stopped."""
        from .snapshot import restore

        restore(self, snap)

    def run_until(self, predicate: Callable[[], bool], limit: int = 10000):
        """Step until ``predicate()`` or the cycle limit; returns cycles
        elapsed."""
        start = self.cycle
        while not predicate():
            if self.cycle - start >= limit:
                raise SimulationError(
                    f"run_until exceeded {limit} cycles"
                )
            self.step()
        return self.cycle - start

    @property
    def activity(self) -> Dict[Tuple[str, str], int]:
        """Per-wire toggle counts keyed by ``(module name, wire name)``."""
        if self._adopted_activity is not None:
            return dict(self._adopted_activity)
        return self.scheduler.activity()

    def total_activity(self) -> int:
        if self._adopted_activity is not None:
            return sum(self._adopted_activity.values())
        return self.scheduler.total_activity()

    def __repr__(self):
        return (
            f"Simulator({self.name!r}, cycle={self.cycle}, "
            f"engine={self.engine!r})"
        )


def run_guarded(sim: Simulator, cycles: int,
                max_wall_time: Optional[float] = None,
                deadline: Optional[float] = None,
                chunk: int = 512) -> None:
    """Advance ``sim`` by ``cycles`` under a wall-clock watchdog.

    With no budget this is exactly ``sim.run(cycles)``.  With one, the
    run proceeds in ``chunk``-cycle slices and a ``time.monotonic()``
    deadline is checked between slices; exceeding it raises
    :class:`~repro.errors.WatchdogTimeout` instead of letting a hung or
    pathological simulation wedge its worker thread / queue slot.  A
    run that finishes its last slice late still succeeds -- the
    watchdog cancels pending work, it never discards completed work.

    Callers sharing one budget across several calls (the checkpointing
    runner) pass an absolute ``deadline`` instead of ``max_wall_time``.
    The slicing itself never changes observables: each slice goes
    through the normal ``run`` path, so kernel-engine runs stay on the
    fast path within every slice.
    """
    if deadline is None:
        if not max_wall_time:
            sim.run(cycles)
            return
        deadline = time.monotonic() + max_wall_time
    done = 0
    while done < cycles:
        n = min(chunk, cycles - done)
        sim.run(n)
        done += n
        if done < cycles and time.monotonic() > deadline:
            raise WatchdogTimeout(
                f"wall-clock watchdog cancelled {sim.name!r} at cycle "
                f"{sim.cycle}: {cycles - done} of {cycles} requested "
                f"cycles unsimulated when the budget expired"
            )
