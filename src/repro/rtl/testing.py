"""Test-bench drivers for raw message ports (valid/ack streams).

These talk the same wire protocol as compiled Anvil modules and the RTL
baseline designs, so the same stimulus can drive either side of a
co-simulation.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..codegen.simfsm import MessagePort
from .module import Module


class PortSource(Module):
    """Drives a stream port from a queue: valid asserted while the queue is
    non-empty, data popped on each completed handshake."""

    def __init__(self, name: str, port: MessagePort):
        super().__init__(name)
        self.port = port
        self.queue: List[int] = []
        self.sent: List[Tuple[int, int]] = []
        self.cycle = 0
        for w in port.wires():
            self.adopt(w)

    def push(self, *values: int):
        self.queue.extend(values)

    def comb_inputs(self):
        return ()          # drives from its queue; reads no wires

    def comb_outputs(self):
        return (self.port.valid, self.port.data)

    def eval_comb(self):
        if self.queue:
            self.port.valid.set(1)
            self.port.data.set(self.queue[0])
        else:
            self.port.valid.set(0)

    def tick(self):
        if self.queue and self.port.fires:
            self.sent.append((self.cycle, self.queue.pop(0)))
        self.cycle += 1


class PortSink(Module):
    """Consumes a stream port.  ``pattern`` controls readiness per cycle
    (e.g. ``lambda c: c % 3 == 0`` for a slow consumer)."""

    def __init__(self, name: str, port: MessagePort,
                 pattern: Optional[Callable[[int], bool]] = None):
        super().__init__(name)
        self.port = port
        self.pattern = pattern or (lambda _cycle: True)
        self.received: List[Tuple[int, int]] = []
        self.cycle = 0
        for w in port.wires():
            self.adopt(w)

    def values(self) -> List[int]:
        return [v for _, v in self.received]

    def comb_inputs(self):
        return ()          # readiness depends only on the cycle pattern

    def comb_outputs(self):
        return (self.port.ack,)

    def eval_comb(self):
        self.port.ack.set(1 if self.pattern(self.cycle) else 0)

    def tick(self):
        if self.port.fires:
            self.received.append((self.cycle, self.port.data.value))
        self.cycle += 1


def make_port(name: str, width: int) -> MessagePort:
    return MessagePort(name, width)
