"""Compiled per-topology cycle kernels: the ``engine="kernel"`` settle
engine.

The levelized scheduler (:mod:`repro.rtl.scheduler`) already avoids the
seed's snapshot dicts, but every cycle still pays full interpreter
overhead: a ``settle()`` call that rebinds ~15 locals and re-walks the
group list, dirty-set bookkeeping for blocks that can never be re-marked,
a separate ``commit_activity()`` pass, ``Waveform.sample()`` with its
per-signal length check, and a ``tick()`` sweep that calls into every
module -- including the ones whose ``tick`` is the base-class no-op.
For the common case -- an acyclic, fully-hinted topology whose
evaluation order is static once built -- all of that dispatch is
knowable at build time.

This module exec-compiles that knowledge into a **cycle kernel**: one
generated Python function that runs N cycles in a single loop with
everything bound to locals --

* straight-line ``eval_comb`` calls in level order for singleton groups,
  each followed by inline output-change checks against the scheduler's
  value table (recording changed wires for the activity commit);
* a bounded local re-evaluation loop only for blocks that feed
  themselves, and a local fixpoint loop only for genuine multi-module
  SCCs (with intra-group dirty flags resolved to individual locals);
* a fused incremental toggle-accounting pass over exactly the wires
  that changed this cycle (``prev -> settled``, same arithmetic as
  :meth:`~repro.rtl.scheduler.CombScheduler.commit_activity`);
* columnar waveform sampling -- one pre-bound ``series.append`` per
  watched signal, no length checks (the entry wrapper pads once);
* the tick sweep over only the modules that override ``tick``.

The kernel shares the scheduler's state tables (``_values``,
``_prev_settled``, ``_toggles``), so kernel cycles and interpreted
cycles interleave freely and bit-identically: the equivalence suite
pins ``kernel`` against both ``levelized`` and ``brute`` on waveforms,
activity counts and cycle counts.

Fast-path contract (when the kernel *disengages*)
-------------------------------------------------

:meth:`~repro.rtl.simulator.Simulator.run` asks :func:`kernel_for` for
a kernel and falls back to the levelized per-cycle path whenever the
fast path cannot apply:

* a module with undeclared ``comb_outputs()`` (the scheduler must then
  scan every wire after every evaluation -- exactly the cost the kernel
  exists to remove), reported as an unsupported plan;
* monitors registered (``on_cycle`` callbacks observe between settle
  and tick; the kernel has no per-cycle callout), checked at entry and
  per cycle;
* pending scheduler state from a standalone ``settle()`` call or an
  un-primed activity baseline (first cycle of a fresh simulator);
* ``run_until`` predicates and single ``step()`` calls -- both use the
  interpreted path, where per-cycle re-dispatch is the point;
* detached simulators (``adopt_remote``) -- ``step()`` raises as usual;
* mid-run ``Simulator.add`` -- the scheduler's invalidation flag is
  checked every kernel cycle and breaks out to a rebuild.

Like the levelized engine, the kernel assumes topology is stable while
modules evaluate: a module that adopts new wires or registers watches
*from inside* ``eval_comb``/``tick`` is only picked up at the next
``run``/``step`` entry (the levelized engine notices one settle
earlier).  No bundled module does this; ``Simulator.add`` (the
supported mutation) sets the scheduler's invalidation flag and is
caught at the next kernel cycle in both engines.

Caching
-------

Generated source is a pure function of the topology *shape* -- group
structure, per-block output scan indices, intra-group reader edges,
catch-all indices, tick overrides and the watched-signal count -- so
the compile cache is keyed by the SHA-256 of the source itself,
mirroring :mod:`repro.codegen.pysim`.  Two simulators of the same
scenario (a harness sweep rebuilding row after row, a process-pool
worker warm-up) compile once.  :func:`cache_stats` exposes hit/miss
counters; :func:`clear_cache` resets them (tests).
"""

from __future__ import annotations

import hashlib
import threading
from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError

__all__ = [
    "KernelPlan",
    "CycleKernel",
    "build_plan",
    "generate_source",
    "kernel_for",
    "cache_stats",
    "clear_cache",
]


class KernelPlan:
    """The structural description a cycle kernel is generated from.

    Extracted from a built :class:`~repro.rtl.scheduler.CombScheduler`:
    everything here is an index into the scheduler's module/wire tables,
    so the generated source never embeds object identities and identical
    topology shapes share one compilation.
    """

    __slots__ = ("n_modules", "steps", "catch_all", "tick_idx",
                 "n_watched", "unsupported")

    def __init__(self, n_modules: int,
                 steps: List[tuple],
                 catch_all: Tuple[int, ...],
                 tick_idx: Tuple[int, ...],
                 n_watched: int,
                 unsupported: Optional[str] = None):
        self.n_modules = n_modules
        #: evaluation steps in level order; each is one of
        #:   ("single", mi, ((wi, self_dirty), ...))
        #:   ("loop",   mi, ((wi, self_dirty), ...))
        #:   ("scc",    (mi, ...), {mi: ((wi, (in-group readers...)), ...)})
        self.steps = steps
        self.catch_all = catch_all
        self.tick_idx = tick_idx
        self.n_watched = n_watched
        #: human-readable reason the fast path cannot apply, or None
        self.unsupported = unsupported


def build_plan(sim) -> KernelPlan:
    """Extract a :class:`KernelPlan` from ``sim``'s built scheduler.

    The scheduler must already be built (``_ensure_built``); the plan
    mirrors its topology tables at that instant.
    """
    from .module import Module

    sch = sim.scheduler
    n_mod = len(sim.modules)
    n_watched = len(sim.waveform._watched)
    if sch._undeclared_writers:
        bad = [m.name for m in sim.modules if m.comb_outputs() is None]
        return KernelPlan(
            n_mod, [], (), (), n_watched,
            unsupported=(
                "module(s) without comb_outputs() hints: "
                f"{bad[:4]!r} -- the kernel needs a fully-hinted "
                f"topology (every wire's writer known at build time)"
            ),
        )

    scan_idx = [tuple(wi for _w, wi in mscan) for mscan in sch._scan]
    readers = sch._readers
    self_mark = sch._self_mark

    steps: List[tuple] = []
    for group in sch._groups:
        if len(group) == 1:
            mi = group[0]
            scan = tuple(
                (wi, self_mark[mi] and mi in readers[wi])
                for wi in scan_idx[mi]
            )
            kind = "loop" if any(sd for _wi, sd in scan) else "single"
            steps.append((kind, mi, scan))
        else:
            members = sorted(group)
            in_group = set(members)
            body = {}
            for mi in members:
                body[mi] = tuple(
                    (wi, tuple(oi for oi in readers[wi]
                               if oi in in_group
                               and (oi != mi or self_mark[mi])))
                    for wi in scan_idx[mi]
                )
            steps.append(("scc", tuple(members), body))

    tick_idx = tuple(
        mi for mi, m in enumerate(sim.modules)
        if type(m).tick is not Module.tick
    )
    catch_all = tuple(wi for _w, wi in sch._catch_all)
    return KernelPlan(n_mod, steps, catch_all, tick_idx, n_watched)


# ---------------------------------------------------------------------------
# source generation
# ---------------------------------------------------------------------------
class _Emitter:
    """Tiny indented-source builder (same shape as pysim's)."""

    def __init__(self):
        self.lines: List[str] = []
        self._indent = 1          # everything lives inside one function

    def line(self, text: str = ""):
        self.lines.append("    " * self._indent + text if text else "")

    def push(self):
        self._indent += 1

    def pop(self):
        self._indent -= 1


def _fused_wires(plan: KernelPlan) -> set:
    """Wire indices whose toggle accounting can fuse into the scan.

    A wire settles at its scan site -- so ``prev -> settled`` accounting
    can happen right there, against a local mirror of the previous
    settled value, with no changed-list and no commit pass -- iff the
    scan provably runs exactly once per cycle: the wire has exactly one
    writer, that writer is a plain singleton block, and no catch-all
    restart can re-run the pass.  Everything else (self-feeding blocks,
    SCC members, multi-writer wires, catch-all wires) may see the wire
    change several times per settle, where only the final value counts.
    """
    if plan.catch_all:
        return set()
    writers: Dict[int, int] = {}
    single_out: set = set()
    for step in plan.steps:
        if step[0] == "scc":
            for scans in step[2].values():
                for wi, _r in scans:
                    writers[wi] = writers.get(wi, 0) + 1
        else:
            for wi, _sd in step[2]:
                writers[wi] = writers.get(wi, 0) + 1
                if step[0] == "single":
                    single_out.add(wi)
    return {wi for wi in single_out if writers[wi] == 1}


def _emit_scan(em: _Emitter, wi: int, fused: set, dirty_targets=()):
    """Inline output-change check for one scanned wire.

    Both shapes compare against a local mirror of the wire's last seen
    value (``_p{wi}``) and re-read the attribute only on the rare
    change path, so the common unchanged case costs one attribute load
    and one compare.  Fused sites account toggles immediately (their
    mirror is the previous *settled* value); dynamic sites additionally
    fold into the scheduler's value table and the changed list for the
    end-of-settle commit, and re-dirty ``dirty_targets`` (the writer's
    own flag, or SCC members).
    """
    em.line(f"if _w{wi}.value != _p{wi}:")
    em.push()
    em.line(f"_x = _w{wi}.value")
    if wi in fused:
        em.line(f"toggles[{wi}] += (_p{wi} ^ _x).bit_count()")
        em.line(f"_p{wi} = _x")
        em.pop()
        return
    em.line(f"_p{wi} = _x")
    em.line(f"values[{wi}] = _x")
    em.line(f"chg_app({wi})")
    for target in dirty_targets:
        em.line(f"{target} = 1")
    em.pop()


def _emit_pass(em: _Emitter, plan: KernelPlan, fused: set) -> int:
    """One full settle pass in level order; returns the number of
    unconditional (straight-line) evaluations, for the eval counter."""
    n_plain = 0
    for step in plan.steps:
        kind = step[0]
        if kind == "single":
            _kind, mi, scan = step
            n_plain += 1
            em.line(f"_e{mi}()")
            for wi, _sd in scan:
                _emit_scan(em, wi, fused)
        elif kind == "loop":
            _kind, mi, scan = step
            em.line(f"# block {mi} feeds itself: bounded local re-eval")
            em.line("_d = 1")
            em.line("_i = 0")
            em.line("while _d:")
            em.push()
            em.line("_i += 1")
            em.line("if _i > _mx:")
            em.push()
            # the diagnostic reads sim.cycle; sync it before raising
            # (the finally block only runs after the error is built)
            em.line("sim.cycle = cyc")
            em.line(f"raise _err([{mi}])")
            em.pop()
            em.line("_d = 0")
            em.line(f"_e{mi}()")
            em.line("_ev += 1")
            for wi, sd in scan:
                _emit_scan(em, wi, fused, ("_d",) if sd else ())
            em.pop()
        else:   # scc
            _kind, members, body = step
            mlist = ", ".join(str(mi) for mi in members)
            em.line(f"# SCC [{mlist}]: local fixpoint "
                    f"(genuine combinational feedback)")
            for mi in members:
                em.line(f"_g{mi} = 1")
            anyd = " or ".join(f"_g{mi}" for mi in members)
            em.line("for _i in range(_mx):")
            em.push()
            em.line(f"if not ({anyd}):")
            em.push()
            em.line("break")
            em.pop()
            for mi in members:
                em.line(f"if _g{mi}:")
                em.push()
                em.line(f"_g{mi} = 0")
                em.line(f"_e{mi}()")
                em.line("_ev += 1")
                for wi, group_readers in body[mi]:
                    _emit_scan(em, wi, fused,
                               tuple(f"_g{oi}" for oi in group_readers))
                em.pop()
            em.pop()
            em.line("else:")
            em.push()
            em.line("sim.cycle = cyc")
            em.line(f"raise _err([{mlist}])")
            em.pop()
    return n_plain


def generate_source(plan: KernelPlan) -> str:
    """Deterministically render ``plan`` as a Python module defining
    ``_KERNEL(sim, sch, n) -> cycles completed``."""
    scanned_set = set(plan.catch_all)
    eval_idx = []
    for step in plan.steps:
        if step[0] == "scc":
            eval_idx.extend(step[1])
            for scans in step[2].values():
                scanned_set.update(wi for wi, _r in scans)
        else:
            eval_idx.append(step[1])
            scanned_set.update(wi for wi, _sd in step[2])
    scanned = sorted(scanned_set)
    fused = _fused_wires(plan)
    dynamic = bool(scanned_set - fused)

    head = [
        f"# cycle kernel: {plan.n_modules} module(s), "
        f"{len(scanned)} scanned wire(s) ({len(fused)} fused), "
        f"{len(plan.catch_all)} catch-all wire(s), "
        f"{plan.n_watched} watched signal(s)",
        "def _KERNEL(sim, sch, n):",
    ]
    em = _Emitter()
    em.line("mods = sim.modules")
    em.line("wires = sch._wires")
    em.line("values = sch._values")
    em.line("prev = sch._prev_settled")
    em.line("toggles = sch._toggles")
    em.line("watched = sim.waveform._watched")
    em.line("mons = sim._monitors")
    em.line("_mx = sim.max_settle_iters")
    em.line("_err = sch._loop_error")
    for mi in sorted(eval_idx):
        em.line(f"_e{mi} = mods[{mi}].eval_comb")
    for wi in scanned:
        em.line(f"_w{wi} = wires[{wi}]")
    for wi in sorted(scanned_set - set(plan.catch_all)):
        # local mirror of the wire's last seen value: the previous
        # settled value for fused sites, the live value table for
        # dynamic ones (values == prev at entry -- the wrapper bails on
        # pending scheduler state; dynamic sites keep values[] in
        # lockstep on their change path)
        em.line(f"_p{wi} = values[{wi}]")
    for mi in plan.tick_idx:
        em.line(f"_t{mi} = mods[{mi}].tick")
    for i in range(plan.n_watched):
        em.line(f"_a{i} = watched[{i}][2].append")
        em.line(f"_v{i} = watched[{i}][1]")
    if dynamic:
        em.line("chg = []")
        em.line("chg_app = chg.append")
    em.line("cyc = sim.cycle")
    em.line("done = 0")
    em.line("_ev = 0")
    em.line("try:")
    em.push()
    em.line("while done < n:")
    em.push()
    # per-cycle guard: topology invalidation (mid-run add -- sim.add
    # sets the stale flag) and monitors registered mid-run.  Anything
    # only module code could mutate without tripping these (adopting
    # wires or adding watches from inside eval/tick) is picked up at
    # the next run/step entry instead -- see the module docstring.
    em.line("if sch._stale or mons:")
    em.push()
    em.line("break")
    em.pop()
    if plan.catch_all:
        # wires with no declared writer can change only between kernel
        # cycles (test-bench pokes before entry, undisciplined tick
        # writes): scan them before the pass, and re-run the pass while
        # the scan keeps hitting -- the levelized engine's outer
        # settle loop, specialized
        em.line("for _p in range(_mx):")
        em.push()
        em.line("_hit = 0")
        for wi in plan.catch_all:
            em.line(f"_x = _w{wi}.value")
            em.line(f"if _x != values[{wi}]:")
            em.push()
            em.line(f"values[{wi}] = _x")
            em.line(f"chg_app({wi})")
            em.line("_hit = 1")
            em.pop()
        em.line("if _p and not _hit:")
        em.push()
        em.line("break")
        em.pop()
        n_plain = _emit_pass(em, plan, fused)
        if n_plain:
            em.line(f"_ev += {n_plain}")
        em.pop()
        em.line("else:")
        em.push()
        em.line("raise _SE(")
        em.push()
        em.line("f\"combinational logic did not settle in {_mx} \"")
        em.line("f\"iterations at cycle {cyc}\")")
        em.pop()
        em.pop()
    else:
        n_plain = _emit_pass(em, plan, fused)
        if n_plain:
            em.line(f"_ev += {n_plain}")
    if dynamic:
        # end-of-settle commit: prev -> settled for the wires that may
        # change more than once per settle (fused sites already
        # accounted themselves at their single scan point)
        em.line("for _k in chg:")
        em.push()
        em.line("_x = values[_k]")
        em.line("_p = prev[_k]")
        em.line("if _p != _x:")
        em.push()
        em.line("toggles[_k] += (_p ^ _x).bit_count()")
        em.line("prev[_k] = _x")
        em.pop()
        em.pop()
        em.line("del chg[:]")
    # columnar waveform sampling
    for i in range(plan.n_watched):
        em.line(f"_a{i}(_v{i}.value)")
    # tick sweep (only modules that override tick)
    for mi in plan.tick_idx:
        em.line(f"_t{mi}()")
    em.line("cyc += 1")
    em.line("done += 1")
    em.pop()
    em.pop()
    em.line("finally:")
    em.push()
    em.line("sim.cycle = cyc")
    em.line("sch.eval_count += _ev")
    em.line("sch.settle_count += done")
    for wi in sorted(fused):
        # sync the local mirrors back so interpreted cycles, activity
        # queries and rebuild carry-over see the settled state
        em.line(f"values[{wi}] = prev[{wi}] = _p{wi}")
    em.pop()
    em.line("return done")
    return "\n".join(head + em.lines) + "\n"


# ---------------------------------------------------------------------------
# compilation + cache
# ---------------------------------------------------------------------------
class CycleKernel:
    """A compiled cycle kernel: the generated runner and its source."""

    __slots__ = ("source", "fn")

    def __init__(self, source: str, fn):
        self.source = source
        self.fn = fn


_CACHE: Dict[str, CycleKernel] = {}
_LOCK = threading.Lock()
_STATS = {"hits": 0, "misses": 0}


def kernel_for(plan: KernelPlan) -> Optional[CycleKernel]:
    """Return the compiled kernel for ``plan`` (``None`` when the plan
    is unsupported), compiling at most once per distinct generated
    source (thread-safe; harness sweeps build simulators from worker
    threads)."""
    if plan.unsupported:
        return None
    source = generate_source(plan)
    key = hashlib.sha256(source.encode("utf-8")).hexdigest()
    with _LOCK:
        hit = _CACHE.get(key)
        if hit is not None:
            _STATS["hits"] += 1
            return hit
    code = compile(source, "<cycle-kernel>", "exec")
    ns: Dict[str, object] = {"_SE": SimulationError}
    exec(code, ns)
    kern = CycleKernel(source, ns["_KERNEL"])
    with _LOCK:
        winner = _CACHE.setdefault(key, kern)
        # a concurrent caller may have compiled the same source first;
        # only the insertion counts as a miss, so hits + misses always
        # equals calls and misses equals cache entries
        if winner is kern:
            _STATS["misses"] += 1
        else:
            _STATS["hits"] += 1
    return winner


def cache_stats() -> Dict[str, int]:
    """Compile-cache counters (the benchmark's cache-stats hook)."""
    with _LOCK:
        return {"hits": _STATS["hits"], "misses": _STATS["misses"],
                "entries": len(_CACHE)}


def clear_cache():
    """Reset the source-hash cache and counters (tests)."""
    with _LOCK:
        _CACHE.clear()
        _STATS["hits"] = 0
        _STATS["misses"] = 0
