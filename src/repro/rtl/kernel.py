"""Compiled per-topology cycle kernels: the ``engine="kernel"`` settle
engine.

The levelized scheduler (:mod:`repro.rtl.scheduler`) already avoids the
seed's snapshot dicts, but every cycle still pays full interpreter
overhead: a ``settle()`` call that rebinds ~15 locals and re-walks the
group list, dirty-set bookkeeping for blocks that can never be re-marked,
a separate ``commit_activity()`` pass, ``Waveform.sample()`` with its
per-signal length check, and a ``tick()`` sweep that calls into every
module -- including the ones whose ``tick`` is the base-class no-op.
For the common case -- an acyclic, fully-hinted topology whose
evaluation order is static once built -- all of that dispatch is
knowable at build time.

This module exec-compiles that knowledge into a **cycle kernel**: one
generated Python function that runs N cycles in a single loop with
everything bound to locals --

* straight-line ``eval_comb`` calls in level order for singleton groups,
  each followed by inline output-change checks against the scheduler's
  value table (recording changed wires for the activity commit);
* a bounded local re-evaluation loop only for blocks that feed
  themselves, and a local fixpoint loop only for genuine multi-module
  SCCs (with intra-group dirty flags resolved to individual locals);
* a fused incremental toggle-accounting pass over exactly the wires
  that changed this cycle (``prev -> settled``, same arithmetic as
  :meth:`~repro.rtl.scheduler.CombScheduler.commit_activity`);
* columnar waveform sampling -- one pre-bound ``series.append`` per
  watched signal, no length checks (the entry wrapper pads once);
* the tick sweep over only the modules that override ``tick``.

The kernel shares the scheduler's state tables (``_values``,
``_prev_settled``, ``_toggles``), so kernel cycles and interpreted
cycles interleave freely and bit-identically: the equivalence suite
pins ``kernel`` against both ``levelized`` and ``brute`` on waveforms,
activity counts and cycle counts.

Fast-path contract (when the kernel *disengages*)
-------------------------------------------------

:meth:`~repro.rtl.simulator.Simulator.run` asks :func:`kernel_for` for
a kernel and falls back to the levelized per-cycle path whenever the
fast path cannot apply:

* a module with undeclared ``comb_outputs()`` (the scheduler must then
  scan every wire after every evaluation -- exactly the cost the kernel
  exists to remove), reported as an unsupported plan;
* monitors registered (``on_cycle`` callbacks observe between settle
  and tick; the kernel has no per-cycle callout), checked at entry and
  per cycle;
* pending scheduler state from a standalone ``settle()`` call or an
  un-primed activity baseline (first cycle of a fresh simulator);
* ``run_until`` predicates and single ``step()`` calls -- both use the
  interpreted path, where per-cycle re-dispatch is the point;
* detached simulators (``adopt_remote``) -- ``step()`` raises as usual;
* mid-run ``Simulator.add`` -- the scheduler's invalidation flag is
  checked every kernel cycle and breaks out to a rebuild.

Like the levelized engine, the kernel assumes topology is stable while
modules evaluate: a module that adopts new wires or registers watches
*from inside* ``eval_comb``/``tick`` is only picked up at the next
``run``/``step`` entry (the levelized engine notices one settle
earlier).  No bundled module does this; ``Simulator.add`` (the
supported mutation) sets the scheduler's invalidation flag and is
caught at the next kernel cycle in both engines.

Checkpoint/restore (:mod:`repro.rtl.snapshot`) is invisible to the
kernel: snapshots capture the shared scheduler columns at a cycle
boundary, restore writes them back, and the generated entry rebinds
every flat local from those columns -- so a restored simulator
re-engages the fast path immediately, without an interpreted fallback
cycle.  :func:`fast_path_ready` makes that entry check inspectable and
the snapshot tests pin it.

Batched (columnar) kernels
--------------------------

:func:`generate_batch_source` emits the *multi-instance* variant:
``_BATCH_KERNEL(sims, schs, n, actives, stops)`` advances up to M
simulators of the **same topology shape** lock-step, one cycle for every
live instance per loop iteration.  The columnar layout is realized at
the binding layer: every per-instance quantity -- wire objects, value
mirrors, toggle tables, eval/tick bounds, waveform appends -- becomes a
column over the M instance slots, unpacked into slot-suffixed locals
(``_w3_0`` is wire 3 of slot 0) so each slot's settle pass runs at
full scalar-kernel speed with zero per-cycle indexing.  A per-slot
change mask (``_on{k}``) peels instances out of the batch the moment
their compiled stop condition fires (``nonzero``/``eq``/``ne`` against
a designated wire, checked after each slot cycle) while the remaining
slots keep advancing; entry ``actives`` masks let the wrapper re-enter
with already-peeled slots.  Divergence the compiled code cannot express
(monitors registered mid-run, a mid-run ``add`` tripping the stale
flag, per-instance scheduler state pending) breaks the batch at a cycle
boundary and the wrapper (:func:`repro.rtl.batch.run_lockstep`) peels
those instances onto the interpreted/scalar path -- the same bail-out
philosophy as the scalar kernel's.  SCC fixpoints need no peeling: each
slot carries its own bounded fixpoint loop, so instances may iterate
different counts per cycle and stay lock-step.

A numpy tier was evaluated for the columns and deliberately left out:
wire values live inside Python module objects (opaque ``eval_comb``
bodies own them), so gathering them into ndarrays each cycle costs more
than the vector ops save, and the slot-unrolled list layout is both
faster and bit-identical by construction.  :data:`BATCH_LAYOUTS` and
:data:`NUMPY_AVAILABLE` record the decision where tooling can see it.

Caching
-------

Generated source is a pure function of the topology *shape* -- group
structure, per-block output scan indices, intra-group reader edges,
catch-all indices, tick overrides and the watched-signal count (plus,
for batched kernels, the slot count and the stop-condition shape) -- so
the compile cache is keyed by the SHA-256 of the source itself,
mirroring :mod:`repro.codegen.pysim`.  Two simulators of the same
scenario (a harness sweep rebuilding row after row, a process-pool
worker warm-up) compile once.  Entries carry their layout (``scalar``
vs ``batch``) so the two kernel families for one topology coexist and
never evict each other; :func:`cache_stats` exposes hit/miss counters
overall and per layout; :func:`clear_cache` resets them (tests).
"""

from __future__ import annotations

import hashlib
import threading
from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError

__all__ = [
    "KernelPlan",
    "CycleKernel",
    "build_plan",
    "generate_source",
    "generate_batch_source",
    "kernel_for",
    "batch_kernel_for",
    "topology_shape",
    "fast_path_ready",
    "cache_stats",
    "clear_cache",
    "STOP_OPS",
    "BATCH_LAYOUTS",
    "NUMPY_AVAILABLE",
]

#: stop comparisons the batched emitter compiles inline (checked after
#: each slot cycle against a designated wire)
STOP_OPS = ("nonzero", "eq", "ne")

#: implemented column layouts for the batched kernel.  ``slots`` is the
#: slot-unrolled pure-Python layout; a numpy tier was evaluated and
#: rejected (see the module docstring), so auto-detection records numpy
#: availability but always selects ``slots``.
BATCH_LAYOUTS = ("slots",)

try:                                    # auto-detection only: see above
    import numpy as _np                 # noqa: F401
    NUMPY_AVAILABLE = True
except ImportError:                     # pragma: no cover
    NUMPY_AVAILABLE = False


class KernelPlan:
    """The structural description a cycle kernel is generated from.

    Extracted from a built :class:`~repro.rtl.scheduler.CombScheduler`:
    everything here is an index into the scheduler's module/wire tables,
    so the generated source never embeds object identities and identical
    topology shapes share one compilation.
    """

    __slots__ = ("n_modules", "steps", "catch_all", "tick_idx",
                 "n_watched", "unsupported")

    def __init__(self, n_modules: int,
                 steps: List[tuple],
                 catch_all: Tuple[int, ...],
                 tick_idx: Tuple[int, ...],
                 n_watched: int,
                 unsupported: Optional[str] = None):
        self.n_modules = n_modules
        #: evaluation steps in level order; each is one of
        #:   ("single", mi, ((wi, self_dirty), ...))
        #:   ("loop",   mi, ((wi, self_dirty), ...))
        #:   ("scc",    (mi, ...), {mi: ((wi, (in-group readers...)), ...)})
        self.steps = steps
        self.catch_all = catch_all
        self.tick_idx = tick_idx
        self.n_watched = n_watched
        #: human-readable reason the fast path cannot apply, or None
        self.unsupported = unsupported


def build_plan(sim) -> KernelPlan:
    """Extract a :class:`KernelPlan` from ``sim``'s built scheduler.

    The scheduler must already be built (``_ensure_built``); the plan
    mirrors its topology tables at that instant.
    """
    from .module import Module

    sch = sim.scheduler
    n_mod = len(sim.modules)
    n_watched = len(sim.waveform._watched)
    if sch._undeclared_writers:
        bad = [m.name for m in sim.modules if m.comb_outputs() is None]
        return KernelPlan(
            n_mod, [], (), (), n_watched,
            unsupported=(
                "module(s) without comb_outputs() hints: "
                f"{bad[:4]!r} -- the kernel needs a fully-hinted "
                f"topology (every wire's writer known at build time)"
            ),
        )

    scan_idx = [tuple(wi for _w, wi in mscan) for mscan in sch._scan]
    readers = sch._readers
    self_mark = sch._self_mark

    steps: List[tuple] = []
    for group in sch._groups:
        if len(group) == 1:
            mi = group[0]
            scan = tuple(
                (wi, self_mark[mi] and mi in readers[wi])
                for wi in scan_idx[mi]
            )
            kind = "loop" if any(sd for _wi, sd in scan) else "single"
            steps.append((kind, mi, scan))
        else:
            members = sorted(group)
            in_group = set(members)
            body = {}
            for mi in members:
                body[mi] = tuple(
                    (wi, tuple(oi for oi in readers[wi]
                               if oi in in_group
                               and (oi != mi or self_mark[mi])))
                    for wi in scan_idx[mi]
                )
            steps.append(("scc", tuple(members), body))

    tick_idx = tuple(
        mi for mi, m in enumerate(sim.modules)
        if type(m).tick is not Module.tick
    )
    catch_all = tuple(wi for _w, wi in sch._catch_all)
    return KernelPlan(n_mod, steps, catch_all, tick_idx, n_watched)


# ---------------------------------------------------------------------------
# source generation
# ---------------------------------------------------------------------------
class _Emitter:
    """Tiny indented-source builder (same shape as pysim's)."""

    def __init__(self):
        self.lines: List[str] = []
        self._indent = 1          # everything lives inside one function

    def line(self, text: str = ""):
        self.lines.append("    " * self._indent + text if text else "")

    def push(self):
        self._indent += 1

    def pop(self):
        self._indent -= 1


def _fused_wires(plan: KernelPlan) -> set:
    """Wire indices whose toggle accounting can fuse into the scan.

    A wire settles at its scan site -- so ``prev -> settled`` accounting
    can happen right there, against a local mirror of the previous
    settled value, with no changed-list and no commit pass -- iff the
    scan provably runs exactly once per cycle: the wire has exactly one
    writer, that writer is a plain singleton block, and no catch-all
    restart can re-run the pass.  Everything else (self-feeding blocks,
    SCC members, multi-writer wires, catch-all wires) may see the wire
    change several times per settle, where only the final value counts.
    """
    if plan.catch_all:
        return set()
    writers: Dict[int, int] = {}
    single_out: set = set()
    for step in plan.steps:
        if step[0] == "scc":
            for scans in step[2].values():
                for wi, _r in scans:
                    writers[wi] = writers.get(wi, 0) + 1
        else:
            for wi, _sd in step[2]:
                writers[wi] = writers.get(wi, 0) + 1
                if step[0] == "single":
                    single_out.add(wi)
    return {wi for wi in single_out if writers[wi] == 1}


def _emit_scan(em: _Emitter, wi: int, fused: set, dirty_targets=(),
               s: str = ""):
    """Inline output-change check for one scanned wire.

    Both shapes compare against a local mirror of the wire's last seen
    value (``_p{wi}``) and re-read the attribute only on the rare
    change path, so the common unchanged case costs one attribute load
    and one compare.  Fused sites account toggles immediately (their
    mirror is the previous *settled* value); dynamic sites additionally
    fold into the scheduler's value table and the changed list for the
    end-of-settle commit, and re-dirty ``dirty_targets`` (the writer's
    own flag, or SCC members).

    ``s`` is the instance-slot suffix: empty for the scalar kernel,
    ``_0``/``_1``/... for the batched kernel's unrolled slots (every
    per-instance name -- wires, mirrors, tables -- is slot-local).
    """
    em.line(f"if _w{wi}{s}.value != _p{wi}{s}:")
    em.push()
    em.line(f"_x = _w{wi}{s}.value")
    if wi in fused:
        em.line(f"toggles{s}[{wi}] += (_p{wi}{s} ^ _x).bit_count()")
        em.line(f"_p{wi}{s} = _x")
        em.pop()
        return
    em.line(f"_p{wi}{s} = _x")
    em.line(f"values{s}[{wi}] = _x")
    em.line(f"chg_app{s}({wi})")
    for target in dirty_targets:
        em.line(f"{target} = 1")
    em.pop()


def _emit_pass(em: _Emitter, plan: KernelPlan, fused: set,
               s: str = "") -> int:
    """One full settle pass in level order; returns the number of
    unconditional (straight-line) evaluations, for the eval counter."""
    n_plain = 0
    for step in plan.steps:
        kind = step[0]
        if kind == "single":
            _kind, mi, scan = step
            n_plain += 1
            em.line(f"_e{mi}{s}()")
            for wi, _sd in scan:
                _emit_scan(em, wi, fused, s=s)
        elif kind == "loop":
            _kind, mi, scan = step
            em.line(f"# block {mi} feeds itself: bounded local re-eval")
            em.line("_d = 1")
            em.line("_i = 0")
            em.line("while _d:")
            em.push()
            em.line("_i += 1")
            em.line(f"if _i > _mx{s}:")
            em.push()
            # the diagnostic reads sim.cycle; sync it before raising
            # (the finally block only runs after the error is built)
            em.line(f"sim{s}.cycle = cyc{s}")
            em.line(f"raise _err{s}([{mi}])")
            em.pop()
            em.line("_d = 0")
            em.line(f"_e{mi}{s}()")
            em.line(f"_ev{s} += 1")
            for wi, sd in scan:
                _emit_scan(em, wi, fused, ("_d",) if sd else (), s=s)
            em.pop()
        else:   # scc
            _kind, members, body = step
            mlist = ", ".join(str(mi) for mi in members)
            em.line(f"# SCC [{mlist}]: local fixpoint "
                    f"(genuine combinational feedback)")
            for mi in members:
                em.line(f"_g{mi} = 1")
            anyd = " or ".join(f"_g{mi}" for mi in members)
            em.line(f"for _i in range(_mx{s}):")
            em.push()
            em.line(f"if not ({anyd}):")
            em.push()
            em.line("break")
            em.pop()
            for mi in members:
                em.line(f"if _g{mi}:")
                em.push()
                em.line(f"_g{mi} = 0")
                em.line(f"_e{mi}{s}()")
                em.line(f"_ev{s} += 1")
                for wi, group_readers in body[mi]:
                    _emit_scan(em, wi, fused,
                               tuple(f"_g{oi}" for oi in group_readers),
                               s=s)
                em.pop()
            em.pop()
            em.line("else:")
            em.push()
            em.line(f"sim{s}.cycle = cyc{s}")
            em.line(f"raise _err{s}([{mlist}])")
            em.pop()
    return n_plain


def _emit_cycle_body(em: _Emitter, plan: KernelPlan, fused: set,
                     dynamic: bool, s: str = ""):
    """One full simulated cycle for one instance: catch-all outer loop
    (when needed) around the settle pass, the end-of-settle activity
    commit, waveform sampling, the tick sweep, and the cycle counters.
    Shared verbatim by the scalar kernel (``s == ""``) and every slot of
    a batched kernel (``s == "_k"``)."""
    if plan.catch_all:
        # wires with no declared writer can change only between kernel
        # cycles (test-bench pokes before entry, undisciplined tick
        # writes): scan them before the pass, and re-run the pass while
        # the scan keeps hitting -- the levelized engine's outer
        # settle loop, specialized
        em.line(f"for _p in range(_mx{s}):")
        em.push()
        em.line("_hit = 0")
        for wi in plan.catch_all:
            em.line(f"_x = _w{wi}{s}.value")
            em.line(f"if _x != values{s}[{wi}]:")
            em.push()
            em.line(f"values{s}[{wi}] = _x")
            em.line(f"chg_app{s}({wi})")
            em.line("_hit = 1")
            em.pop()
        em.line("if _p and not _hit:")
        em.push()
        em.line("break")
        em.pop()
        n_plain = _emit_pass(em, plan, fused, s=s)
        if n_plain:
            em.line(f"_ev{s} += {n_plain}")
        em.pop()
        em.line("else:")
        em.push()
        em.line("raise _SE(")
        em.push()
        em.line(f"f\"combinational logic did not settle in {{_mx{s}}} \"")
        em.line(f"f\"iterations at cycle {{cyc{s}}}\")")
        em.pop()
        em.pop()
    else:
        n_plain = _emit_pass(em, plan, fused, s=s)
        if n_plain:
            em.line(f"_ev{s} += {n_plain}")
    if dynamic:
        # end-of-settle commit: prev -> settled for the wires that may
        # change more than once per settle (fused sites already
        # accounted themselves at their single scan point)
        em.line(f"for _k in chg{s}:")
        em.push()
        em.line(f"_x = values{s}[_k]")
        em.line(f"_p = prev{s}[_k]")
        em.line("if _p != _x:")
        em.push()
        em.line(f"toggles{s}[_k] += (_p ^ _x).bit_count()")
        em.line(f"prev{s}[_k] = _x")
        em.pop()
        em.pop()
        em.line(f"del chg{s}[:]")
    # columnar waveform sampling
    for i in range(plan.n_watched):
        em.line(f"_a{i}{s}(_v{i}{s}.value)")
    # tick sweep (only modules that override tick)
    for mi in plan.tick_idx:
        em.line(f"_t{mi}{s}()")
    em.line(f"cyc{s} += 1")
    em.line(f"done{s} += 1")


def _plan_layout(plan: KernelPlan):
    """Shared shape analysis: evaluated module indices, the scanned wire
    set, the fused subset, and whether any dynamic (changed-list) wires
    remain."""
    scanned_set = set(plan.catch_all)
    eval_idx = []
    for step in plan.steps:
        if step[0] == "scc":
            eval_idx.extend(step[1])
            for scans in step[2].values():
                scanned_set.update(wi for wi, _r in scans)
        else:
            eval_idx.append(step[1])
            scanned_set.update(wi for wi, _sd in step[2])
    fused = _fused_wires(plan)
    dynamic = bool(scanned_set - fused)
    return eval_idx, scanned_set, fused, dynamic


def _emit_slot_bindings(em: _Emitter, plan: KernelPlan, eval_idx,
                        scanned_set, dynamic: bool, s: str = ""):
    """Bind one instance's columns to slot-suffixed locals: wires, value
    mirrors, eval/tick bounds, waveform appends, the changed list."""
    for mi in sorted(eval_idx):
        em.line(f"_e{mi}{s} = mods[{mi}].eval_comb")
    for wi in sorted(scanned_set):
        em.line(f"_w{wi}{s} = wires[{wi}]")
    for wi in sorted(scanned_set - set(plan.catch_all)):
        # local mirror of the wire's last seen value: the previous
        # settled value for fused sites, the live value table for
        # dynamic ones (values == prev at entry -- the wrapper bails on
        # pending scheduler state; dynamic sites keep values[] in
        # lockstep on their change path)
        em.line(f"_p{wi}{s} = values{s}[{wi}]")
    for mi in plan.tick_idx:
        em.line(f"_t{mi}{s} = mods[{mi}].tick")
    for i in range(plan.n_watched):
        em.line(f"_a{i}{s} = watched[{i}][2].append")
        em.line(f"_v{i}{s} = watched[{i}][1]")
    if dynamic:
        em.line(f"chg{s} = []")
        em.line(f"chg_app{s} = chg{s}.append")


def generate_source(plan: KernelPlan) -> str:
    """Deterministically render ``plan`` as a Python module defining
    ``_KERNEL(sim, sch, n) -> cycles completed``."""
    eval_idx, scanned_set, fused, dynamic = _plan_layout(plan)
    scanned = sorted(scanned_set)

    head = [
        f"# cycle kernel: {plan.n_modules} module(s), "
        f"{len(scanned)} scanned wire(s) ({len(fused)} fused), "
        f"{len(plan.catch_all)} catch-all wire(s), "
        f"{plan.n_watched} watched signal(s)",
        "def _KERNEL(sim, sch, n):",
    ]
    em = _Emitter()
    em.line("mods = sim.modules")
    em.line("wires = sch._wires")
    em.line("values = sch._values")
    em.line("prev = sch._prev_settled")
    em.line("toggles = sch._toggles")
    em.line("watched = sim.waveform._watched")
    em.line("mons = sim._monitors")
    em.line("_mx = sim.max_settle_iters")
    em.line("_err = sch._loop_error")
    _emit_slot_bindings(em, plan, eval_idx, scanned_set, dynamic)
    em.line("cyc = sim.cycle")
    em.line("done = 0")
    em.line("_ev = 0")
    em.line("try:")
    em.push()
    em.line("while done < n:")
    em.push()
    # per-cycle guard: topology invalidation (mid-run add -- sim.add
    # sets the stale flag) and monitors registered mid-run.  Anything
    # only module code could mutate without tripping these (adopting
    # wires or adding watches from inside eval/tick) is picked up at
    # the next run/step entry instead -- see the module docstring.
    em.line("if sch._stale or mons:")
    em.push()
    em.line("break")
    em.pop()
    _emit_cycle_body(em, plan, fused, dynamic)
    em.pop()
    em.pop()
    em.line("finally:")
    em.push()
    em.line("sim.cycle = cyc")
    em.line("sch.eval_count += _ev")
    em.line("sch.settle_count += done")
    for wi in sorted(fused):
        # sync the local mirrors back so interpreted cycles, activity
        # queries and rebuild carry-over see the settled state
        em.line(f"values[{wi}] = prev[{wi}] = _p{wi}")
    em.pop()
    em.line("return done")
    return "\n".join(head + em.lines) + "\n"


def generate_batch_source(plan: KernelPlan, m: int,
                          stop: Optional[Tuple[str, int]] = None) -> str:
    """Render ``plan`` as the batched (columnar) kernel for ``m``
    lock-step instance slots::

        _BATCH_KERNEL(sims, schs, n, actives, stops)
            -> ((done_0, stopped_0), ..., (done_{m-1}, stopped_{m-1}))

    ``sims``/``schs`` are the per-slot columns (all sharing this plan's
    topology shape); ``actives`` masks slots already peeled by the
    wrapper; ``stops`` carries per-slot comparison values when ``stop``
    is an (op, wire-index) pair from :data:`STOP_OPS`.  Every slot's
    cycle body is unrolled with slot-suffixed locals, so per-instance
    cost matches the scalar kernel; a firing stop condition peels its
    slot from the batch (mask off, cycle counter frozen) while the rest
    keep advancing.
    """
    if m < 1:
        raise ValueError(f"batch width must be >= 1, got {m}")
    if stop is not None:
        op, stop_wi = stop
        if op not in STOP_OPS:
            raise ValueError(
                f"unknown stop op {op!r}: known ops are "
                f"{', '.join(repr(o) for o in STOP_OPS)}"
            )
    eval_idx, scanned_set, fused, dynamic = _plan_layout(plan)
    head = [
        f"# batch cycle kernel: {m} slot(s), {plan.n_modules} module(s), "
        f"{len(scanned_set)} scanned wire(s) ({len(fused)} fused), "
        f"{len(plan.catch_all)} catch-all wire(s), "
        f"{plan.n_watched} watched signal(s), "
        + (f"stop={stop[0]}@w{stop[1]}" if stop else "no stop"),
        "def _BATCH_KERNEL(sims, schs, n, actives, stops):",
    ]
    em = _Emitter()
    slots = [f"_{k}" for k in range(m)]
    for k, s in enumerate(slots):
        em.line(f"sim{s} = sims[{k}]")
        em.line(f"sch{s} = schs[{k}]")
        em.line(f"mods = sim{s}.modules")
        em.line(f"wires = sch{s}._wires")
        em.line(f"values{s} = sch{s}._values")
        em.line(f"prev{s} = sch{s}._prev_settled")
        em.line(f"toggles{s} = sch{s}._toggles")
        em.line(f"watched = sim{s}.waveform._watched")
        em.line(f"mons{s} = sim{s}._monitors")
        em.line(f"_mx{s} = sim{s}.max_settle_iters")
        em.line(f"_err{s} = sch{s}._loop_error")
        _emit_slot_bindings(em, plan, eval_idx, scanned_set, dynamic, s=s)
        em.line(f"cyc{s} = sim{s}.cycle")
        em.line(f"done{s} = 0")
        em.line(f"_ev{s} = 0")
        em.line(f"_on{s} = 1 if actives[{k}] else 0")
        em.line(f"_st{s} = 0")
        if stop is not None:
            em.line(f"_q{s} = wires[{stop_wi}]")
            if stop[0] != "nonzero":
                em.line(f"_sv{s} = stops[{k}]")
    em.line("_alive = " + " + ".join(f"_on{s}" for s in slots))
    em.line("done = 0")
    em.line("try:")
    em.push()
    em.line("while done < n and _alive:")
    em.push()
    # combined per-cycle guard over every slot: a mid-run add (stale
    # flag) or a monitor registered from module code breaks the whole
    # batch at a cycle boundary; the wrapper peels onto the
    # interpreted path.  Amortized over m slots this is ~2 attribute
    # loads per instance-cycle.
    guard = " or ".join(f"sch{s}._stale or mons{s}" for s in slots)
    em.line(f"if {guard}:")
    em.push()
    em.line("break")
    em.pop()
    for k, s in enumerate(slots):
        em.line(f"if _on{s}:")
        em.push()
        _emit_cycle_body(em, plan, fused, dynamic, s=s)
        if stop is not None:
            if stop[0] == "nonzero":
                em.line(f"if _q{s}.value:")
            elif stop[0] == "eq":
                em.line(f"if _q{s}.value == _sv{s}:")
            else:
                em.line(f"if _q{s}.value != _sv{s}:")
            em.push()
            em.line(f"_on{s} = 0")
            em.line(f"_st{s} = 1")
            em.line("_alive -= 1")
            em.pop()
        em.pop()
    em.line("done += 1")
    em.pop()
    em.pop()
    em.line("finally:")
    em.push()
    for s in slots:
        em.line(f"sim{s}.cycle = cyc{s}")
        em.line(f"sch{s}.eval_count += _ev{s}")
        em.line(f"sch{s}.settle_count += done{s}")
        for wi in sorted(fused):
            em.line(f"values{s}[{wi}] = prev{s}[{wi}] = _p{wi}{s}")
    em.pop()
    em.line("return ("
            + ", ".join(f"(done{s}, _st{s})" for s in slots)
            + ("," if m == 1 else "") + ")")
    return "\n".join(head + em.lines) + "\n"


# ---------------------------------------------------------------------------
# compilation + cache
# ---------------------------------------------------------------------------
class CycleKernel:
    """A compiled cycle kernel: the generated runner and its source."""

    __slots__ = ("source", "fn")

    def __init__(self, source: str, fn):
        self.source = source
        self.fn = fn


# key -> (layout, kernel).  The SHA-256 key already separates scalar
# from batched sources (different headers and entry points), so tagging
# the layout costs nothing and lets cache_stats() report per-layout
# entry counts: the two kernel families for one topology coexist and
# never evict each other.
_CACHE: Dict[str, Tuple[str, CycleKernel]] = {}
_LOCK = threading.Lock()
_STATS = {
    "scalar": {"hits": 0, "misses": 0},
    "batch": {"hits": 0, "misses": 0},
}


def _compiled(source: str, entry: str, layout: str) -> CycleKernel:
    """Compile ``source`` at most once per distinct text (thread-safe;
    harness sweeps build simulators from worker threads), counting the
    hit/miss against ``layout``'s counters."""
    key = hashlib.sha256(source.encode("utf-8")).hexdigest()
    with _LOCK:
        hit = _CACHE.get(key)
        if hit is not None:
            _STATS[layout]["hits"] += 1
            return hit[1]
    code = compile(source, f"<cycle-kernel:{layout}>", "exec")
    ns: Dict[str, object] = {"_SE": SimulationError}
    exec(code, ns)
    kern = CycleKernel(source, ns[entry])
    with _LOCK:
        winner = _CACHE.setdefault(key, (layout, kern))[1]
        # a concurrent caller may have compiled the same source first;
        # only the insertion counts as a miss, so hits + misses always
        # equals calls and misses equals cache entries
        if winner is kern:
            _STATS[layout]["misses"] += 1
        else:
            _STATS[layout]["hits"] += 1
    return winner


def kernel_for(plan: KernelPlan) -> Optional[CycleKernel]:
    """Return the compiled scalar kernel for ``plan`` (``None`` when the
    plan is unsupported)."""
    if plan.unsupported:
        return None
    return _compiled(generate_source(plan), "_KERNEL", "scalar")


def batch_kernel_for(plan: KernelPlan, m: int,
                     stop: Optional[Tuple[str, int]] = None,
                     ) -> Optional[CycleKernel]:
    """Return the compiled ``m``-slot batched kernel for ``plan``
    (``None`` when the plan is unsupported), cached alongside -- never
    instead of -- the scalar kernel for the same topology."""
    if plan.unsupported:
        return None
    return _compiled(generate_batch_source(plan, m, stop),
                     "_BATCH_KERNEL", "batch")


def topology_shape(sim) -> Tuple[Optional[str], Optional[KernelPlan]]:
    """``(digest, plan)`` identifying ``sim``'s topology *shape* for
    batch grouping: simulators with equal digests generate identical
    kernels and may run lock-step in one batch.  ``(None, None)`` when
    the shape has no kernel (unsupported plan).

    The digest is the SHA-256 of the scalar kernel source (the same key
    the compile cache uses), memoized per simulator against the
    scheduler's rebuild token and the watched-signal count so repeated
    grouping passes don't re-render the source.
    """
    sch = sim.scheduler
    sch._ensure_built()
    token = (sch._topo_key, len(sim.waveform._watched))
    cached = getattr(sim, "_shape_cache", None)
    if cached is not None and cached[0] == token:
        return cached[1], cached[2]
    plan = build_plan(sim)
    if plan.unsupported:
        digest = None
        plan_out = None
    else:
        source = generate_source(plan)
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
        plan_out = plan
    sim._shape_cache = (token, digest, plan_out)
    return digest, plan_out


def fast_path_ready(sim) -> bool:
    """Whether the compiled fast path can engage for ``sim``'s *next*
    ``run()`` call without an interpreted fallback cycle.

    This is the entry check of
    :meth:`~repro.rtl.simulator.Simulator._kernel_advance` made
    inspectable: no monitors, not detached, scheduler built with no
    pending prime or dirty set, and a supported topology.  The
    checkpoint layer (:mod:`repro.rtl.snapshot`) restores the scheduler
    columns the generated code rebinds its flat locals from at every
    entry, so a restored simulator must report ready whenever the
    snapshot's source did -- the snapshot test suite pins that
    invariant so restores never silently degrade ``engine="kernel"``
    runs to the per-cycle interpreter.
    """
    if sim.detached or sim._monitors:
        return False
    sch = sim.scheduler
    sch._ensure_built()
    if sch._needs_prime or sch._changed:
        return False
    digest, _plan = topology_shape(sim)
    return digest is not None


def cache_stats() -> Dict[str, object]:
    """Compile-cache counters (the benchmark's cache-stats hook).

    Top-level ``hits``/``misses``/``entries`` aggregate both layouts;
    ``layouts`` breaks them down so scalar warm-up and batch warm-up are
    separately visible in BENCH blobs.
    """
    with _LOCK:
        per = {
            layout: {
                "hits": _STATS[layout]["hits"],
                "misses": _STATS[layout]["misses"],
                "entries": sum(1 for lay, _k in _CACHE.values()
                               if lay == layout),
            }
            for layout in _STATS
        }
        return {
            "hits": sum(p["hits"] for p in per.values()),
            "misses": sum(p["misses"] for p in per.values()),
            "entries": len(_CACHE),
            "layouts": per,
        }


def clear_cache():
    """Reset the source-hash cache and counters (tests)."""
    with _LOCK:
        _CACHE.clear()
        for layout in _STATS:
            _STATS[layout]["hits"] = 0
            _STATS[layout]["misses"] = 0
