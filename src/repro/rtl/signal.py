"""Wires: the signals connecting RTL modules.

A :class:`Wire` carries an integer masked to its width.  Wires are *stateless*
-- their values are re-derived during the combinational settling phase of
every cycle -- which is exactly the property whose misuse the Anvil paper
calls a timing hazard.
"""

from __future__ import annotations

from typing import Optional


class Wire:
    """A named signal with a width and a current value."""

    __slots__ = ("name", "width", "mask", "value", "driver")

    def __init__(self, name: str, width: int = 1, value: int = 0):
        self.name = name
        self.width = width
        # cached once: Wire.set is the hottest call in the simulator
        self.mask = (1 << width) - 1
        self.value = value & self.mask
        self.driver: Optional[str] = None

    def set(self, value: int):
        self.value = value & self.mask

    def get(self) -> int:
        return self.value

    @property
    def bool(self) -> bool:
        return bool(self.value)

    def __repr__(self):
        return f"Wire({self.name}={self.value:#x}/{self.width}b)"


class WireBundle:
    """A dict-like group of wires (e.g. one message's data/valid/ack)."""

    def __init__(self, prefix: str):
        self.prefix = prefix
        self.wires = {}

    def add(self, name: str, width: int = 1) -> Wire:
        w = Wire(f"{self.prefix}.{name}", width)
        self.wires[name] = w
        return w

    def __getitem__(self, name: str) -> Wire:
        return self.wires[name]

    def __contains__(self, name: str) -> bool:
        return name in self.wires

    def values(self):
        return self.wires.values()

    def __repr__(self):
        return f"WireBundle({self.prefix}, {list(self.wires)})"
