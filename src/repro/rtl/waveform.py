"""Waveform capture and ASCII rendering (for the paper's figures)."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class Waveform:
    """Samples watched wires once per cycle (after combinational settle)."""

    def __init__(self):
        # (label, wire, series): the series list is cached at watch time
        # so the per-cycle sample loop does no dict lookups
        self._watched: List[Tuple[str, object, List[int]]] = []
        self.samples: Dict[str, List[int]] = {}

    def watch(self, wire, label: str = ""):
        label = label or wire.name
        if label in self.samples:
            for existing_label, existing_wire, _series in self._watched:
                if existing_label == label and existing_wire is wire:
                    return       # the same signal twice: one series
            raise ValueError(
                f"waveform label {label!r} is already watching a "
                f"different wire; samples are keyed by label, so two "
                f"signals cannot share one (pass an explicit label=)"
            )
        series = self.samples.setdefault(label, [])
        self._watched.append((label, wire, series))

    def sample(self, cycle: int):
        for _label, wire, series in self._watched:
            if len(series) < cycle:
                series.extend([0] * (cycle - len(series)))
            series.append(wire.value)

    def series(self, label: str) -> List[int]:
        return self.samples[label]

    def render(self, first: int = 0, last: Optional[int] = None) -> str:
        """ASCII waveform: one row per watched signal.

        Single-bit signals draw as ``_``/``#`` levels; multi-bit signals
        print their hexadecimal value per cycle.
        """
        if not self._watched:
            return "(no signals watched)"
        some = next(iter(self.samples.values()))
        last = len(some) if last is None else min(last, len(some))
        if last <= first:
            # watched but never sampled (or an empty window): nothing
            # to draw -- the seed crashed here on max() of no cells
            return "(no samples)"
        width = max(len(lbl) for lbl, _w, _s in self._watched) + 2
        cells = max(
            3,
            max(
                len(f"{v:x}")
                for series in self.samples.values()
                for v in series[first:last]
            ) + 1,
        )
        header = " " * width + "".join(
            f"{c:<{cells}}" for c in range(first, last)
        )
        lines = [header]
        for label, wire, _series in self._watched:
            series = self.samples[label][first:last]
            if wire.width == 1:
                body = "".join(
                    ("#" * cells if v else "_" * cells) for v in series
                )
            else:
                body = "".join(f"{v:<{cells}x}" for v in series)
            lines.append(f"{label:<{width}}{body}")
        return "\n".join(lines)

    def changes(self, label: str) -> List[Tuple[int, int]]:
        """List of (cycle, new_value) change points of a signal."""
        out = []
        prev = None
        for i, v in enumerate(self.samples[label]):
            if v != prev:
                out.append((i, v))
                prev = v
        return out
