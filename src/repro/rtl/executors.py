"""Declarative sweep jobs (:class:`JobSpec`) and the executors that run
them: ``serial``, ``thread`` and ``process``.

The harness tables, figures and benchmark sweeps are lists of
*independent* jobs.  Before this module they were ``(name, thunk)``
pairs -- closures over simulators, RNGs and design factories -- which
confined execution to a thread pool: CPython's GIL serializes the
CPU-bound thunks, and closures cannot cross a process boundary (they do
not pickle).  A :class:`JobSpec` removes both limits by *describing* a
job instead of capturing it: a registered job ``kind``, the scenario
registry name it targets, a frozen :class:`~repro.api.SimConfig`, and a
tuple of picklable parameters.  Workers rebuild the work from the
description, so the same spec list runs identically on any executor:

* ``serial``  -- in-process, submission order; the profiling/debugging
  reference and the timing-fidelity choice for benchmark measurement;
* ``thread``  -- the historical :class:`~concurrent.futures.ThreadPoolExecutor`
  path, kept as the compatibility reference (isolation and uniform sweep
  structure; no wall-clock speedup for GIL-bound jobs);
* ``process`` -- a :class:`~concurrent.futures.ProcessPoolExecutor` with
  chunked sharding, per-worker warm-up that pre-populates the
  ``pycompiled`` compile cache, and real multi-core speedup.

Guarantees shared by all three executors:

* **Determinism** -- results are keyed by job name in submission order;
  the output never depends on completion order, and every job owns its
  RNGs and simulators.
* **Exception propagation** -- the first failing job *in submission
  order* re-raises in the caller.  For process workers the original
  exception is re-raised where picklable, with the worker's formatted
  traceback attached via an :class:`ExecutorError` cause, so remote
  failures debug like local ones.

Job kinds are registered with :func:`job_kind`; kinds owned by heavier
modules (the harness drivers) are resolved lazily through
``_KIND_HOMES`` so workers only import what their jobs need.
"""

from __future__ import annotations

import importlib
import os
import pickle
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: the available execution strategies, validated by the config layer
EXECUTORS = ("serial", "thread", "process")

#: how many chunks each process worker should receive on average; >1 so
#: uneven job costs still balance across the pool
_CHUNKS_PER_WORKER = 4


# ---------------------------------------------------------------------------
# job descriptions
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class JobSpec:
    """One declarative, picklable sweep job.

    ``kind``
        a registered job kind (see :func:`job_kind`);
    ``name``
        the result key -- unique within one batch, submission order is
        result order;
    ``config``
        the :class:`~repro.api.SimConfig` the job runs under (may be
        ``None`` for kinds that take no simulation config);
    ``scenario``
        the scenario-registry name the job targets, when it targets one;
    ``cycles``
        cycle-count override (``None`` -> the config's default);
    ``params``
        extra kind-specific parameters as a ``(key, value)`` tuple --
        everything in it must pickle.
    """

    kind: str
    name: str
    config: object = None
    scenario: Optional[str] = None
    cycles: Optional[int] = None
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self):
        if not isinstance(self.kind, str) or not self.kind:
            raise ValueError(f"JobSpec.kind must be a non-empty str, "
                             f"got {self.kind!r}")
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(f"JobSpec.name must be a non-empty str, "
                             f"got {self.name!r}")
        object.__setattr__(self, "params", tuple(
            (str(k), v) for k, v in self.params))

    def param(self, key: str, default=None):
        for k, v in self.params:
            if k == key:
                return v
        return default

    @property
    def run_cycles(self) -> Optional[int]:
        """The effective cycle count: the explicit override, else the
        config's default."""
        if self.cycles is not None:
            return self.cycles
        return getattr(self.config, "cycles", None)


@dataclass
class ScenarioRun:
    """What one scenario-targeting job produced -- the picklable subset
    of a finished :class:`~repro.rtl.simulator.Simulator`'s state.

    ``sim`` carries the live simulator only when the job ran in-process
    (serial/thread executors); it is dropped at the process boundary.
    """

    scenario: str
    cycles: int
    seconds: float
    total_activity: int
    activity: Dict[Tuple[str, str], int]
    samples: Dict[str, List[int]]
    engine: str
    modules: int
    watched: int
    final_cycle: int
    trace: Optional[str] = None
    resumed_from: int = 0        # checkpoint cycle the run restored, if any
    sim: object = field(default=None, compare=False, repr=False)

    def __getstate__(self):
        state = self.__dict__.copy()
        state["sim"] = None          # simulators do not cross processes
        return state

    @property
    def cycles_per_second(self) -> float:
        return self.cycles / self.seconds if self.seconds > 0 else 0.0


def scenario_run_of(sim, scenario: str, cycles: int,
                    seconds: float, trace: Optional[str] = None
                    ) -> ScenarioRun:
    """Snapshot a finished simulator into a picklable :class:`ScenarioRun`."""
    return ScenarioRun(
        scenario=scenario,
        cycles=cycles,
        seconds=seconds,
        total_activity=sim.total_activity(),
        activity=dict(sim.activity),
        samples={k: list(v) for k, v in sim.waveform.samples.items()},
        engine=sim.engine,
        modules=len(sim.modules),
        watched=len(sim.waveform.samples),
        final_cycle=sim.cycle,
        trace=trace,
        sim=sim,
    )


# ---------------------------------------------------------------------------
# job kinds
# ---------------------------------------------------------------------------
#: kind name -> handler; handlers take a JobSpec and return a picklable
#: result
JOB_KINDS: Dict[str, Callable[[JobSpec], object]] = {}

#: kinds implemented by modules this one must not import eagerly -- the
#: module registers the kind at import time; workers import on demand
_KIND_HOMES = {
    "table1_row": "repro.harness.table1",
    "table2_case": "repro.harness.table2",
    "figure": "repro.harness.figures",
    "appendix_anvil": "repro.harness.appendix_a",
    "appendix_bmc": "repro.harness.appendix_a",
    "inject_campaign": "repro.inject.campaign",
}


def job_kind(name: str):
    """Register a job-kind handler under ``name`` (decorator)."""
    def decorate(handler):
        if name in JOB_KINDS:
            raise ValueError(f"job kind {name!r} is already registered")
        JOB_KINDS[name] = handler
        return handler
    return decorate


def execute_job(spec: JobSpec):
    """Run one :class:`JobSpec` in this process and return its result."""
    handler = JOB_KINDS.get(spec.kind)
    if handler is None and spec.kind in _KIND_HOMES:
        importlib.import_module(_KIND_HOMES[spec.kind])
        handler = JOB_KINDS.get(spec.kind)
    if handler is None:
        known = ", ".join(sorted(set(JOB_KINDS) | set(_KIND_HOMES)))
        raise ValueError(
            f"unknown job kind {spec.kind!r}: known kinds are {known}"
        )
    return handler(spec)


@job_kind("run_scenario")
def _run_scenario(spec: JobSpec) -> ScenarioRun:
    """Build a registered scenario under the spec's config and run it.

    Params: optional ``resume_from`` -- a picklable
    :class:`~repro.rtl.snapshot.Snapshot` restored into the fresh
    build before running, so the job simulates only the tail from the
    snapshot's cycle (snapshots are plain data and cross the process
    pool like any other param).  With ``config.checkpoint_every`` set
    instead, the job consults and feeds the worker's process-wide
    checkpoint store exactly as :meth:`~repro.api.Session.run` does.
    """
    from ..api import get_registry
    from .simulator import run_guarded
    from .snapshot import (
        get_checkpoint_store,
        prefix_key,
        restore,
        resume_longest_prefix,
        run_with_checkpoints,
    )

    cfg = spec.config
    sim = get_registry().build(spec.scenario, cfg)
    cycles = spec.run_cycles
    snap = spec.param("resume_from")
    every = getattr(cfg, "checkpoint_every", None)
    wall = getattr(cfg, "max_wall_time", None)
    resumed = 0
    t0 = time.perf_counter()
    if snap is not None:
        restore(sim, snap)
        resumed = sim.cycle
        if cycles > sim.cycle:
            run_guarded(sim, cycles - sim.cycle, wall)
    elif every:
        store = get_checkpoint_store()
        key = prefix_key(spec.scenario, cfg, sim)
        resumed = resume_longest_prefix(sim, key, cycles, store)
        run_with_checkpoints(sim, cycles, every, store=store, key=key,
                             scenario=spec.scenario, max_wall_time=wall)
    else:
        run_guarded(sim, cycles, wall)
    elapsed = time.perf_counter() - t0
    trace = sim.waveform.render() if getattr(cfg, "trace", False) else None
    run = scenario_run_of(sim, spec.scenario, cycles, elapsed, trace)
    run.resumed_from = resumed
    return run


@job_kind("run_scenario_batch")
def _run_scenario_batch(spec: JobSpec) -> Tuple[ScenarioRun, ...]:
    """Build one scenario once per seed and advance every instance
    lock-step through the batched cycle kernel.

    Params: ``seeds`` -- the per-instance stimulus seeds, in result
    order.  Returns one :class:`ScenarioRun` per seed; the lock-step
    pass is bit-identical to per-seed ``run_scenario`` jobs (the batch
    layer peels anything the compiled kernel cannot take onto the
    scalar path), so results are interchangeable with scalar sweeps.
    The recorded ``seconds`` is the whole batch's wall-clock divided
    evenly -- per-instance time is not separable inside one kernel pass.
    """
    from ..api import get_registry
    from .batch import run_lockstep

    cfg = spec.config
    seeds = spec.param("seeds", ())
    cycles = spec.run_cycles
    registry = get_registry()
    sims = [registry.build(spec.scenario, cfg.replace(seed=s))
            for s in seeds]
    t0 = time.perf_counter()
    run_lockstep(sims, cycles, width=getattr(cfg, "batch", None))
    elapsed = time.perf_counter() - t0
    share = elapsed / max(len(sims), 1)
    trace = getattr(cfg, "trace", False)
    return tuple(
        scenario_run_of(sim, spec.scenario, cycles, share,
                        sim.waveform.render() if trace else None)
        for sim in sims
    )


@job_kind("bench_scenario")
def _bench_scenario(spec: JobSpec) -> ScenarioRun:
    """Best-of-N cycles/second measurement of one scenario x config.

    Params: ``warmup`` (cycles run before timing starts) and ``repeats``
    (the run is rebuilt from scratch each repeat; the best rate wins).
    One untimed warm-up iteration runs first so one-time compile costs
    (pycompiled sources, cycle kernels) land outside every timed
    repeat -- without it, first-repeat compile time showed up as
    inflated variance on small-cycle scenarios.
    """
    from ..api import get_registry

    cfg = spec.config
    warmup = spec.param("warmup", 20)
    repeats = max(spec.param("repeats", 1), 1)
    cycles = spec.run_cycles
    sim = get_registry().build(spec.scenario, cfg)
    sim.run(warmup + cycles)                 # untimed: compile caches warm
    best_elapsed, sim = float("inf"), None
    for _ in range(repeats):
        sim = get_registry().build(spec.scenario, cfg)
        sim.run(warmup)
        t0 = time.perf_counter()
        sim.run(cycles)
        best_elapsed = min(best_elapsed, time.perf_counter() - t0)
    return scenario_run_of(sim, spec.scenario, cycles, best_elapsed)


# ---------------------------------------------------------------------------
# failure propagation
# ---------------------------------------------------------------------------
class ExecutorError(RuntimeError):
    """A job failed inside an executor.

    For process workers the original exception is re-raised in the
    caller where picklable, with an ``ExecutorError`` as its
    ``__cause__`` carrying the worker's formatted traceback; when the
    original cannot cross the process boundary the ``ExecutorError``
    itself is raised.
    """

    def __init__(self, job_name: str, message: str,
                 worker_traceback: Optional[str] = None):
        detail = f"job {job_name!r} failed: {message}"
        if worker_traceback:
            detail += f"\n--- worker traceback ---\n{worker_traceback}"
        super().__init__(detail)
        self.job_name = job_name
        self.worker_traceback = worker_traceback


def _outcome_of(spec: JobSpec):
    """Run one spec, catching failures into a picklable outcome tuple."""
    try:
        return ("ok", execute_job(spec))
    except Exception as exc:              # shipped to the caller, not lost
        tb = traceback.format_exc()
        try:
            pickle.loads(pickle.dumps(exc))
            payload = exc
        except Exception:
            payload = None
        return ("err", (payload, repr(exc), tb))


def _raise_outcome(name: str, error) -> None:
    exc, rep, tb = error
    cause = ExecutorError(name, rep, tb)
    if exc is not None:
        raise exc from cause
    raise cause


# ---------------------------------------------------------------------------
# the executors
# ---------------------------------------------------------------------------
def _job_parts(job):
    """Normalize a job -- a JobSpec or a legacy ``(name, thunk)`` pair --
    into ``(name, callable)``."""
    if isinstance(job, JobSpec):
        return job.name, (lambda spec=job: execute_job(spec))
    name, thunk = job
    return name, thunk


class SerialExecutor:
    """Submission-order in-process execution (the reference)."""

    name = "serial"

    def __init__(self, workers: int = 1):
        self.workers = 1

    def run(self, jobs: Sequence) -> Dict[str, object]:
        results = {}
        for job in jobs:
            name, thunk = _job_parts(job)
            results[name] = thunk()
        return results


class ThreadExecutor:
    """The historical thread-pool path (compatibility reference): jobs
    interleave under the GIL; expect isolation, not speedup."""

    name = "thread"

    def __init__(self, workers: int):
        self.workers = max(1, workers)

    def run(self, jobs: Sequence) -> Dict[str, object]:
        jobs = list(jobs)
        if self.workers <= 1 or len(jobs) <= 1:
            return SerialExecutor().run(jobs)
        pool = ThreadPoolExecutor(max_workers=self.workers)
        try:
            futures = [(name, pool.submit(thunk))
                       for name, thunk in map(_job_parts, jobs)]
            results = {name: fut.result() for name, fut in futures}
        except KeyboardInterrupt:
            # a deliberate stop: abandon queued work instead of letting
            # pool teardown block on it (the CLI reports and exits 130)
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        except BaseException:
            pool.shutdown(wait=True, cancel_futures=True)
            raise
        pool.shutdown()
        return results


def _chunked(items: List, size: int) -> List[List]:
    return [items[i:i + size] for i in range(0, len(items), size)]


def _warm_specs(specs: Sequence[JobSpec]) -> List[Tuple[str, object]]:
    """The distinct (scenario, config) pairs worth pre-compiling in each
    worker: scenario-targeting jobs on the ``pycompiled`` backend (whose
    generated-Python compile step the warm-up can pay once up front) or
    the ``kernel`` engine (whose per-topology cycle-kernel compile the
    warm-up pays the same way)."""
    seen, warm = set(), []
    for spec in specs:
        cfg = spec.config
        if spec.scenario is None or cfg is None:
            continue
        if (getattr(cfg, "backend", "interp") != "pycompiled"
                and getattr(cfg, "engine", "levelized") != "kernel"):
            continue
        key = (spec.scenario, cfg)
        if key not in seen:
            seen.add(key)
            warm.append((spec.scenario, cfg.replace(stim=1)))
    return warm


def _worker_init(warm: List[Tuple[str, object]]) -> None:
    """Process-pool initializer: import the scenario registry and build
    each warm (scenario, config) pair at minimal stimulus depth, so the
    ``pycompiled`` source cache is hot before real jobs arrive.  Kernel-
    engine pairs additionally run two cycles: the cycle kernel compiles
    on the first *batched* run after the activity baseline is primed,
    and its source depends only on the topology shape -- which stimulus
    depth does not change -- so the warm build's kernel is the real
    job's cache hit."""
    import signal

    from ..api import get_registry

    # fork workers inherit the CLI's SIGTERM->KeyboardInterrupt mapping,
    # which would turn Process.terminate() into "abort this chunk, start
    # the next queued one"; pool workers must actually die on SIGTERM
    try:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):
        pass
    registry = get_registry()
    for scenario, cfg in warm:
        try:
            sim = registry.build(scenario, cfg)
            if getattr(cfg, "engine", "levelized") == "kernel":
                sim.run(2)
        except Exception:
            pass      # the real job will surface the error attributably


def _run_chunk(specs: List[JobSpec]) -> List[Tuple[str, object]]:
    return [_outcome_of(spec) for spec in specs]


def _mp_context():
    import multiprocessing as mp

    method = os.environ.get("REPRO_MP_START")
    if method:
        return mp.get_context(method)
    if "fork" in mp.get_all_start_methods():
        # fork is the cheap path and inherits the populated scenario
        # registry; spawn/forkserver workers import it on demand instead
        return mp.get_context("fork")
    return mp.get_context()


class ProcessExecutor:
    """Chunk-sharded :class:`~concurrent.futures.ProcessPoolExecutor`
    execution of :class:`JobSpec` lists -- the only executor that buys
    wall-clock speedup for GIL-bound sweeps (given >1 core).

    Jobs must be JobSpecs (closures do not pickle).  Chunks keep IPC
    amortized; results come back keyed in submission order; the first
    failing job in submission order re-raises with its worker traceback
    (see :class:`ExecutorError`).

    A worker that dies *abnormally* (killed by a signal, OOM) poisons
    the whole pool: every unfinished future reports
    ``BrokenProcessPool``.  Finished chunks are kept and the unfinished
    ones are retried once on a fresh pool after ``retry_backoff``
    seconds -- transient deaths (an OOM-killed sibling, a container
    resize, a fault-injection campaign worker taking its hang budget
    out badly) clear on retry, while a deterministic crash fails again
    and propagates.  ``self.retries`` counts the rebuilds for tests and
    diagnostics."""

    name = "process"

    def __init__(self, workers: int, chunk_size: Optional[int] = None,
                 warmup: bool = True, mp_context=None,
                 max_retries: int = 1, retry_backoff: float = 0.25):
        self.workers = max(1, workers)
        self.chunk_size = chunk_size
        self.warmup = warmup
        self.mp_context = mp_context
        self.max_retries = max(0, max_retries)
        self.retry_backoff = max(0.0, retry_backoff)
        self.retries = 0

    def _chunk_size(self, n_jobs: int) -> int:
        if self.chunk_size is not None:
            return max(1, self.chunk_size)
        slots = self.workers * _CHUNKS_PER_WORKER
        return max(1, -(-n_jobs // slots))

    def run(self, jobs: Sequence) -> Dict[str, object]:
        jobs = list(jobs)
        bad = [j for j in jobs if not isinstance(j, JobSpec)]
        if bad:
            raise TypeError(
                f"the process executor needs picklable JobSpecs; got "
                f"{len(bad)} thunk job(s) (first: {_job_parts(bad[0])[0]!r})."
                f"  Describe the work as JobSpecs or use the serial/"
                f"thread executors."
            )
        if not jobs:
            return {}
        ctx = self.mp_context or _mp_context()
        # fork children inherit the parent's populated registry and
        # pycompiled source cache, and lazy compilation in a worker
        # touches only that worker's chunk -- pre-building every
        # scenario per worker would be pure overhead there.  The
        # warm-up pays off for spawn/forkserver workers, which start
        # cold and would otherwise recompile per first-encounter.
        warm = []
        if self.warmup and ctx.get_start_method() != "fork":
            warm = _warm_specs(jobs)
        chunks = _chunked(jobs, self._chunk_size(len(jobs)))
        results: Dict[str, object] = {}
        self.retries = 0
        pending = chunks

        def make_pool(n_chunks: int) -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=min(self.workers, n_chunks),
                mp_context=ctx,
                initializer=_worker_init,
                initargs=(warm,),
            )

        pool = make_pool(len(pending))
        try:
            while True:
                broken: List[List[JobSpec]] = []
                cause: Optional[BaseException] = None
                futures = []
                try:
                    for chunk in pending:
                        futures.append(pool.submit(_run_chunk, chunk))
                except BrokenProcessPool as exc:
                    # the pool died mid-submission: everything not yet
                    # submitted needs the fresh pool too
                    cause = exc
                    broken.extend(pending[len(futures):])
                for chunk, fut in zip(pending, futures):
                    try:
                        payloads = fut.result()
                    except BrokenProcessPool as exc:
                        cause = cause or exc
                        broken.append(chunk)
                        continue
                    for spec, (status, payload) in zip(chunk, payloads):
                        if status == "err":
                            _raise_outcome(spec.name, payload)
                        results[spec.name] = payload
                if not broken:
                    break
                if self.retries >= self.max_retries:
                    raise ExecutorError(
                        broken[0][0].name,
                        f"worker process died abnormally (signal/OOM) "
                        f"and the retried pool died too; "
                        f"{sum(map(len, broken))} job(s) unfinished",
                    ) from cause
                self.retries += 1
                pool.shutdown(wait=False, cancel_futures=True)
                time.sleep(self.retry_backoff)
                pending = broken
                pool = make_pool(len(pending))
        except KeyboardInterrupt:
            # a deliberate stop: cancel queued chunks AND terminate the
            # workers mid-chunk. A terminal Ctrl-C delivers SIGINT to
            # the whole foreground group, but a bare signal to the
            # parent does not -- without the terminate, interpreter
            # exit blocks joining workers still grinding their chunk.
            # (snapshot first: shutdown() clears pool._processes; kill,
            # not terminate -- a still-inherited SIGTERM handler would
            # let the worker survive and pick up the next queued chunk)
            workers = dict(getattr(pool, "_processes", None) or {})
            pool.shutdown(wait=False, cancel_futures=True)
            for worker in workers.values():
                if worker.is_alive():
                    worker.kill()
            raise
        except BaseException:
            pool.shutdown(wait=True, cancel_futures=True)
            raise
        pool.shutdown()
        return results


def get_executor(name: str, workers: int = 1, **kwargs):
    """Instantiate the named executor (``serial``/``thread``/``process``)."""
    if name == "serial":
        return SerialExecutor()
    if name == "thread":
        return ThreadExecutor(workers)
    if name == "process":
        return ProcessExecutor(workers, **kwargs)
    choices = ", ".join(repr(e) for e in EXECUTORS)
    raise ValueError(
        f"unknown executor {name!r}: known executors are {choices}"
    )
