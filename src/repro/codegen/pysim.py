"""Generated-Python FSM backend: compile the plan, not interpret it.

The reference interpreter in :mod:`repro.codegen.simfsm` re-walks a
process's :class:`~repro.core.fsmplan.ProcessPlan` on every settle
iteration of every cycle -- generic dispatch on event kinds, recursive
``RExpr.eval`` per expression node.  This module removes all of that
per-cycle interpretation: from the plan it emits straight-line Python
source -- one specialized **fire** function per thread (the settle-pass
body: compute the events firing this cycle, drive handshake wires,
populate the same-cycle overlay) and one specialized **commit** function
per thread (the clock-edge body: commit register writes, slots and debug
prints for the fired events) -- with every runtime expression lowered to
an inline Python expression by :meth:`~repro.codegen.rexpr.RExpr.to_python`.
The source is ``compile()``d and ``exec``'d once per distinct plan and
cached, so harness sweeps that rebuild the same design row after row
never pay the compilation twice.

Both backends must stay observationally identical -- same waveforms,
same toggle counts, same diagnostics; ``tests/test_pysim.py`` pins that
over randomized workloads of all six design families.

Caching
-------

Generated source is a pure function of the plan, so the compile cache is
keyed by the SHA-256 of the source itself (which also fingerprints the
optimization flags -- a plan built with ``do_optimize=False`` generates
different source).  Rebuilding a process from the same factory therefore
hits the cache even though the :class:`~repro.lang.process.Process`
object is new.  :func:`cache_stats` exposes hit/miss counters for the
benchmark; :func:`clear_cache` resets the cache (tests).
"""

from __future__ import annotations

import hashlib
import threading
from typing import Dict, List, Tuple

from ..core.events import EventKind, SyncDir
from ..core.fsmplan import (
    CommitExpr,
    CommitFlag,
    CommitRecv,
    CommitReg,
    LatchFlag,
    LatchRecv,
    ProcessPlan,
    ThreadPlan,
)


class _Emitter:
    """Tiny indented-source builder."""

    def __init__(self):
        self.lines: List[str] = []
        self._indent = 0

    def line(self, text: str = ""):
        self.lines.append("    " * self._indent + text if text else "")

    def push(self):
        self._indent += 1

    def pop(self):
        self._indent -= 1

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class _ExprCtx:
    """The context handed to ``RExpr.to_python``: pooled constants, fresh
    temporaries, and handshake-wire name resolution against the plan's
    port table."""

    def __init__(self, plan: ProcessPlan):
        self.plan = plan
        self.consts: Dict[object, str] = {}
        self.const_order: List[Tuple[str, object]] = []
        self._temp = 0
        self._cse_n = 0
        self.cse: Dict[int, str] = {}    # id(node) -> temp name
        self.used_ports: set = set()

    def sub(self, node) -> str:
        """Render a child expression -- through the active CSE table, so
        a hoisted shared node renders as its temporary's name."""
        name = self.cse.get(id(node))
        if name is not None:
            return name
        return node.to_python(self)

    def const(self, value) -> str:
        name = self.consts.get(value)
        if name is None:
            name = f"_K{len(self.consts)}"
            self.consts[value] = name
            self.const_order.append((name, value))
        return name

    def temp(self) -> str:
        self._temp += 1
        return f"_i{self._temp}"

    def wire(self, port: int, role: str) -> str:
        self.used_ports.add(port)
        return f"_w{port}{role[0]}"      # _w3d / _w3v / _w3a

    def ready(self, endpoint: str, message: str) -> str:
        idx = self.plan.port_index[(endpoint, message)]
        pp = self.plan.ports[idx]
        role = "ack" if pp.is_sender else "valid"
        return f"{self.wire(idx, role)}.value"


def _emit_expr(em: _Emitter, ctx: _ExprCtx, expr) -> str:
    """Render ``expr`` at the current emission point, hoisting shared
    subexpression DAG nodes into local temporaries first.

    Runtime expressions are DAGs with heavy sharing (the AES round
    functions reuse xtime chains hundreds of times); inlining them as
    trees makes the generated source exponential.  Within one evaluation
    site the environment is fixed, so every shared node can be computed
    once: composite nodes referenced more than once are assigned to
    ``_eN`` locals in dependency order, and the returned expression
    refers to those names."""
    counts: Dict[int, int] = {}
    topo: List = []

    def visit(node):
        nid = id(node)
        counts[nid] = counts.get(nid, 0) + 1
        if counts[nid] > 1:
            return
        for child in node.children():
            visit(child)
        topo.append(node)

    visit(expr)
    hoisted = ctx.cse
    for node in topo:
        if counts[id(node)] >= 2 and node.children():
            rendered = node.to_python(ctx)
            ctx._cse_n += 1
            name = f"_e{ctx._cse_n}"
            em.line(f"{name} = {rendered}")
            hoisted[id(node)] = name
    out = ctx.sub(expr)
    ctx.cse = {}
    return out


def _emit_latches(em: _Emitter, ctx: _ExprCtx, latches):
    for latch in latches:
        if type(latch) is LatchRecv:
            em.line(f"_ov[{latch.target}] = "
                    f"{ctx.wire(latch.port, 'data')}.value")
        elif type(latch) is LatchFlag:
            v = ctx.wire(latch.port, "valid")
            a = ctx.wire(latch.port, "ack")
            em.line(f"_ov[{latch.target}] = "
                    f"1 if ({v}.value and {a}.value) else 0")
        else:   # LatchExpr
            rendered = _emit_expr(em, ctx, latch.source)
            em.line(f"_ov[{latch.slot}] = {rendered}")


def _gen_fire(em: _Emitter, ctx: _ExprCtx, tp: ThreadPlan):
    """The settle-pass body: a straight-line specialization of the
    interpreter's ``_fire_set`` in event order."""
    for ep in tp.events:
        eid = ep.eid
        kind = ep.kind
        em.line(f"# e{eid} {kind.value}" +
                (f" {ep.sync_key[0]}.{ep.sync_key[1]}" if ep.sync_key else ""))
        if kind is EventKind.ROOT:
            em.line(f"if {eid} not in af and _st == now:")
            em.push()
            em.line(f"fn[{eid}] = now")
            _emit_latches(em, ctx, ep.latches)
            em.pop()
            continue
        preds = ep.preds
        if kind is EventKind.JOIN_ANY:
            em.line(f"if {eid} not in af and {eid} not in ad:")
            em.push()
            fired = " or ".join(
                f"{p} in af or {p} in fn" for p in preds
            ) or "False"
            em.line(f"if {fired}:")
            em.push()
            em.line(f"fn[{eid}] = now")
            _emit_latches(em, ctx, ep.latches)
            em.pop()
            dead = " and ".join(
                f"({p} in ad or {p} in dn)" for p in preds
            ) or "True"
            em.line(f"elif {dead}:")
            em.push()
            em.line(f"dn.add({eid})")
            em.pop()
            em.pop()
            continue
        # DELAY / JOIN_ALL / BRANCH / SYNC: need every predecessor
        em.line(f"if {eid} not in af and {eid} not in ad:")
        em.push()
        pops = 1
        if preds:
            dead = " or ".join(f"{p} in ad or {p} in dn" for p in preds)
            em.line(f"if {dead}:")
            em.push()
            em.line(f"dn.add({eid})")
            em.pop()
            em.line("else:")
            em.push()
            pops += 1
            cvars = []
            for j, p in enumerate(preds):
                cv = f"_c{j}"
                cvars.append(cv)
                em.line(f"{cv} = af.get({p})")
                em.line(f"if {cv} is None:")
                em.push()
                em.line(f"{cv} = fn.get({p})")
                em.pop()
            em.line("if " + " and ".join(f"{c} is not None" for c in cvars)
                    + ":")
            em.push()
            pops += 1
            if kind is EventKind.DELAY:       # only DELAY consumes _b
                em.line("_b = _st")
                for cv in cvars:
                    em.line(f"if {cv} > _b:")
                    em.push()
                    em.line(f"_b = {cv}")
                    em.pop()
        elif kind is EventKind.DELAY:
            em.line("_b = _st")

        if kind is EventKind.DELAY:
            em.line(f"if _b + {ep.delay} == now:")
            em.push()
            em.line(f"fn[{eid}] = now")
            _emit_latches(em, ctx, ep.latches)
            em.pop()
        elif kind is EventKind.JOIN_ALL:
            em.line(f"fn[{eid}] = now")
            _emit_latches(em, ctx, ep.latches)
        elif kind is EventKind.BRANCH:
            if ep.cond_expr is not None:
                rendered = _emit_expr(em, ctx, ep.cond_expr)
                em.line(f"_x = ({rendered}) & 1")
            else:
                em.line("_x = 0")
            em.line("if _x:" if ep.polarity else "if not _x:")
            em.push()
            em.line(f"fn[{eid}] = now")
            _emit_latches(em, ctx, ep.latches)
            em.pop()
            em.line("else:")
            em.push()
            em.line(f"dn.add({eid})")
            em.pop()
        elif kind is EventKind.SYNC:
            key = repr(ep.sync_key)
            em.line(f"if {key} not in busy:")
            em.push()
            em.line(f"busy.add({key})")
            if ep.guard is not None:
                rendered = _emit_expr(em, ctx, ep.guard)
                em.line(f"_g = ({rendered}) & 1")
            pidx = ep.port
            v = ctx.wire(pidx, "valid")
            a = ctx.wire(pidx, "ack")
            d = ctx.wire(pidx, "data")
            drive_guarded = ep.guard is not None
            if drive_guarded:
                em.line("if _g:")
                em.push()
            if ep.direction is SyncDir.SEND:
                em.line(f"{v}.value = 1")
                if ep.payload is not None:
                    rendered = _emit_expr(em, ctx, ep.payload)
                    em.line(f"{d}.value = ({rendered}) & {d}.mask")
                else:
                    em.line(f"{d}.value = 0")
            else:
                em.line(f"{a}.value = 1")
            if drive_guarded:
                em.pop()
            if ep.conditional:
                em.line(f"fn[{eid}] = now")
                _emit_latches(em, ctx, ep.latches)
            else:
                em.line(f"if {v}.value and {a}.value:")
                em.push()
                em.line(f"fn[{eid}] = now")
                _emit_latches(em, ctx, ep.latches)
                em.pop()
            em.pop()
        else:  # pragma: no cover - exhaustive over EventKind
            raise AssertionError(kind)
        for _ in range(pops):
            em.pop()


def _gen_commit(em: _Emitter, ctx: _ExprCtx, tp: ThreadPlan):
    """The clock-edge body: apply the committed effects of every event in
    the settled fire set, in event order."""
    em.line("af.update(fn)")
    for ep in tp.events:
        if not ep.commits:
            continue
        em.line(f"if {ep.eid} in fn:")
        em.push()
        for c in ep.commits:
            if type(c) is CommitReg:
                rendered = _emit_expr(em, ctx, c.source)
                em.line(f"_rw.append(({c.reg!r}, {rendered}))")
            elif type(c) is CommitRecv:
                t = c.target
                em.line(f"_sl[{t}] = _ov[{t}] if {t} in _ov else "
                        f"{ctx.wire(c.port, 'data')}.value")
            elif type(c) is CommitFlag:
                t = c.target
                v = ctx.wire(c.port, "valid")
                a = ctx.wire(c.port, "ack")
                em.line(f"_sl[{t}] = _ov[{t}] if {t} in _ov else "
                        f"(1 if ({v}.value and {a}.value) else 0)")
            elif type(c) is CommitExpr:
                s = c.slot
                rendered = _emit_expr(em, ctx, c.source)
                em.line(f"_sl[{s}] = _ov[{s}] if {s} in _ov else "
                        f"({rendered})")
            else:   # CommitPrint
                if c.source is not None:
                    rendered = _emit_expr(em, ctx, c.source)
                    em.line(f"_v = {rendered}")
                else:
                    em.line("_v = None")
                em.line(f"m.debug_log.append((now, {c.fmt!r}, _v))")
                em.line("if m.print_debug:")
                em.push()
                em.line('_sfx = "" if _v is None else f" {_v:#x}"')
                em.line(f'print(f"[{{now}}] {{m.name}}: " + {c.fmt!r}'
                        " + _sfx)")
                em.pop()
        em.pop()


def _port_binds(ctx: _ExprCtx) -> List[str]:
    """Local bindings for the port wires the body actually touches."""
    out = []
    for pidx in sorted(ctx.used_ports):
        base = 3 * pidx
        out.append(f"    _w{pidx}d = pw[{base}]; _w{pidx}v = pw[{base + 1}]"
                   f"; _w{pidx}a = pw[{base + 2}]")
    return out


def generate_source(plan: ProcessPlan) -> str:
    """Deterministically render ``plan`` as a Python module defining
    ``_FIRE`` and ``_COMMIT`` tuples (one entry per thread)."""
    ctx = _ExprCtx(plan)
    chunks: List[str] = []
    header = [
        f"# pysim backend for process {plan.name!r} "
        f"(optimized={plan.optimized})",
        f"# {len(plan.threads)} thread(s), {len(plan.ports)} port(s)",
    ]
    fire_names = []
    commit_names = []
    for tp in plan.threads:
        # fire ---------------------------------------------------------
        em = _Emitter()
        em.push()
        ctx.used_ports = set()
        _gen_fire(em, ctx, tp)
        em.pop()
        body = em.lines
        name = f"_t{tp.index}_fire"
        fire_names.append(name)
        fn_lines = [f"def {name}(m, act, busy):",
                    "    now = m.cycle",
                    "    _r = m.regs",
                    "    _sl = act.slots",
                    "    af = act.fired",
                    "    ad = act.dead",
                    "    _st = act.start",
                    "    fn = {}",
                    "    dn = set()",
                    "    _ov = {}"]
        if ctx.used_ports:
            fn_lines.append("    pw = m._pw")
            fn_lines.extend(_port_binds(ctx))
        fn_lines.extend(body)
        fn_lines.append("    return fn, dn, _ov")
        chunks.append("\n".join(fn_lines))
        # commit -------------------------------------------------------
        em = _Emitter()
        em.push()
        ctx.used_ports = set()
        _gen_commit(em, ctx, tp)
        em.pop()
        body = em.lines
        name = f"_t{tp.index}_commit"
        commit_names.append(name)
        fn_lines = [f"def {name}(m, act, fn, _ov):",
                    "    now = m.cycle",
                    "    _r = m.regs",
                    "    _sl = act.slots",
                    "    af = act.fired",
                    "    _rw = m._reg_writes"]
        if ctx.used_ports:
            fn_lines.append("    pw = m._pw")
            fn_lines.extend(_port_binds(ctx))
        fn_lines.extend(body)
        chunks.append("\n".join(fn_lines))
    consts = [f"{name} = {value!r}" for name, value in ctx.const_order]
    footer = [
        f"_FIRE = ({', '.join(fire_names)}{',' if fire_names else ''})",
        f"_COMMIT = ({', '.join(commit_names)}"
        f"{',' if commit_names else ''})",
    ]
    return "\n".join(header + consts + [""] +
                     ["\n\n".join(chunks)] + [""] + footer) + "\n"


class PyBackend:
    """A compiled plan: per-thread fire/commit functions + their source."""

    __slots__ = ("source", "fire", "commit")

    def __init__(self, source: str, fire: Tuple, commit: Tuple):
        self.source = source
        self.fire = fire
        self.commit = commit


_CACHE: Dict[str, PyBackend] = {}
_LOCK = threading.Lock()
_STATS = {"hits": 0, "misses": 0}


def backend_for(plan: ProcessPlan) -> PyBackend:
    """Return the compiled backend for ``plan``, compiling at most once
    per distinct generated source (thread-safe; harness sweeps build
    simulators from worker threads).

    Two cache levels: a per-plan memo (repeat instantiation of one
    compiled process -- e.g. N instances in a System -- skips even the
    source regeneration and does not touch the hit/miss counters) and
    the source-hash cache underneath it (distinct plans of identical
    designs share one compilation)."""
    memo = plan._backend
    if memo is not None:
        return memo
    source = generate_source(plan)
    key = hashlib.sha256(source.encode("utf-8")).hexdigest()
    with _LOCK:
        hit = _CACHE.get(key)
        if hit is not None:
            _STATS["hits"] += 1
            plan._backend = hit
            return hit
    code = compile(source, f"<pysim:{plan.name}>", "exec")
    ns: Dict[str, object] = {}
    exec(code, ns)
    backend = PyBackend(source, tuple(ns["_FIRE"]), tuple(ns["_COMMIT"]))
    with _LOCK:
        winner = _CACHE.setdefault(key, backend)
        # a concurrent caller may have compiled the same source first;
        # only the insertion counts as a miss, so hits + misses always
        # equals calls and misses equals cache entries
        if winner is backend:
            _STATS["misses"] += 1
        else:
            _STATS["hits"] += 1
    plan._backend = winner
    return winner


def cache_stats() -> Dict[str, int]:
    """Compile-cache counters (the benchmark's cache-stats hook)."""
    with _LOCK:
        return {"hits": _STATS["hits"], "misses": _STATS["misses"],
                "entries": len(_CACHE)}


def clear_cache():
    """Reset the source-hash cache and counters (per-plan memos on
    already-built ProcessPlan objects are unaffected)."""
    with _LOCK:
        _CACHE.clear()
        _STATS["hits"] = 0
        _STATS["misses"] = 0
