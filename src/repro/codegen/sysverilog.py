"""SystemVerilog emission (Section 6.2).

Each Anvil process becomes one synthesizable SystemVerilog module:

* channel messages lower to ``data``/``valid``/``ack`` ports with the
  handshake ports omitted for static/dependent sync modes
  (:mod:`repro.codegen.lowering`);
* the event graph lowers to an FSM with a one-bit ``fire`` wire per event,
  plus state registers for joins, cycle delays and in-flight handshakes;
* register assignments are guarded by their event's ``fire`` wire, which is
  the implicit clock gating the paper credits for leakage savings;
* no lifetime bookkeeping is emitted -- timing safety was discharged
  statically.

The emitted text is deterministic, which the test-suite exploits with
structural golden checks (balanced ``module``/``endmodule``, port presence,
one ``fire`` wire per event).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.events import (
    EventKind,
    RecvBindAction,
    RegWriteAction,
    SendDataAction,
    SyncDir,
    SyncFlagAction,
    SyncGuardAction,
)
from ..core.graph_builder import LatchAction
from ..lang.channels import Side
from ..lang.process import Process, System
from .lowering import endpoint_ports
from .simfsm import CompiledProcess, CompiledThread, compile_process
from . import rexpr as rx

_BINOP_SV = {
    "add": "+", "sub": "-", "mul": "*", "and": "&", "or": "|", "xor": "^",
    "eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">=",
    "shl": "<<", "shr": ">>",
}


def _count_refs(e: rx.RExpr, names: "NameMap", seen=None):
    """DAG-aware reference counting: shared nodes get hoisted to wires."""
    if seen is None:
        seen = set()
    names.refcount[id(e)] = names.refcount.get(id(e), 0) + 1
    if id(e) in seen:
        return
    seen.add(id(e))
    for c in e.children():
        _count_refs(c, names, seen)


def _sv_expr(e: rx.RExpr, names: "NameMap") -> str:
    hoisted = names.hoisted.get(id(e))
    if hoisted is not None:
        return hoisted[0]
    text = _sv_expr_raw(e, names)
    if names.refcount.get(id(e), 0) > 1 and not isinstance(
        e, (rx.RLit, rx.RReg, rx.RSlot, rx.RReady, rx.RUnit,
            rx.RSlice, rx.RField)
    ):
        name = f"t{names.thread_idx}_x{len(names.hoisted)}_w"
        names.hoisted[id(e)] = (name, max(e.width, 1), text)
        return name
    return text


def _sv_expr_raw(e: rx.RExpr, names: "NameMap") -> str:
    if isinstance(e, rx.RLit):
        return f"{e.width}'d{e.value}"
    if isinstance(e, rx.RUnit):
        return "1'b0"
    if isinstance(e, rx.RReg):
        return names.reg(e.name)
    if isinstance(e, rx.RSlot):
        return names.slot(e.slot)
    if isinstance(e, rx.RBin):
        if e.op == "concat":
            return f"{{{_sv_expr(e.a, names)}, {_sv_expr(e.b, names)}}}"
        return f"({_sv_expr(e.a, names)} {_BINOP_SV[e.op]} {_sv_expr(e.b, names)})"
    if isinstance(e, rx.RUn):
        op = {"not": "~", "neg": "-", "redor": "|", "redand": "&",
              "redxor": "^"}[e.op]
        return f"({op}{_sv_expr(e.a, names)})"
    if isinstance(e, rx.RMux):
        return (
            f"({_sv_expr(e.cond, names)} ? {_sv_expr(e.a, names)} : "
            f"{_sv_expr(e.b, names)})"
        )
    if isinstance(e, (rx.RSlice, rx.RField)):
        inner = _sv_expr(e.a, names)
        if isinstance(e, rx.RSlice):
            hi, lo = e.hi, e.lo
        else:
            lo, hi = e.lo, e.lo + e.width - 1
        if hi == lo:
            return f"{inner}[{hi}]"
        return f"{inner}[{hi}:{lo}]"
    if isinstance(e, rx.RBundle):
        parts = [
            _sv_expr(e.fields[n], names)
            for n, _ in reversed(e.dtype.fields)
        ]
        return "{" + ", ".join(parts) + "}"
    if isinstance(e, rx.RReady):
        return names.ready(e.endpoint, e.message)
    if isinstance(e, rx.RTable):
        # ROM-style case expression folded into a nested ternary chain
        idx = _sv_expr(e.index, names)
        chain = f"{e.width}'d{e.entries[-1]}"
        for i in range(len(e.entries) - 2, -1, -1):
            chain = (
                f"(({idx}) == {e._idx_bits}'d{i}) ? "
                f"{e.width}'d{e.entries[i]} : {chain}"
            )
        return f"({chain})"
    raise AssertionError(f"unhandled rexpr {e!r}")


class NameMap:
    """Maps IR entities to SystemVerilog identifiers for one module."""

    def __init__(self, process: Process, thread_idx: int = 0):
        self.process = process
        self.thread_idx = thread_idx
        self.refcount = {}
        # id(expr) -> (wire name, width, defining text)
        self.hoisted = {}

    def reg(self, name: str) -> str:
        return f"{name}_q"

    def slot(self, slot: int) -> str:
        # references go through the bypass wire so same-cycle latches are
        # combinationally visible (mirrors the simulator's slot overlay)
        return f"t{self.thread_idx}_slot{slot}_w"

    def slot_q(self, slot: int) -> str:
        return f"t{self.thread_idx}_slot{slot}_q"

    def fire(self, eid: int) -> str:
        return f"t{self.thread_idx}_e{eid}_fire"

    def done(self, eid: int) -> str:
        return f"t{self.thread_idx}_e{eid}_done"

    def fired_q(self, eid: int) -> str:
        return f"t{self.thread_idx}_e{eid}_fired_q"

    def cnt(self, eid: int) -> str:
        return f"t{self.thread_idx}_e{eid}_cnt_q"

    def port(self, endpoint: str, message: str, role: str) -> str:
        return f"{endpoint}_{message}_{role}"

    def ready(self, endpoint: str, message: str) -> str:
        ep = self.process.get_endpoint(endpoint)
        role = "ack" if ep.sends(message) else "valid"
        return self.port(endpoint, message, role)


def _slot_widths(cthread: CompiledThread, process: Process) -> Dict[int, int]:
    widths: Dict[int, int] = {}
    for ev in cthread.graph.events:
        for act in ev.actions:
            if isinstance(act, RecvBindAction):
                msg = process.get_endpoint(act.endpoint).message(act.message)
                widths[act.target] = max(
                    widths.get(act.target, 1), msg.dtype.width
                )
            elif isinstance(act, SyncFlagAction):
                widths[act.target] = max(widths.get(act.target, 1), 1)
            elif isinstance(act, LatchAction):
                widths[act.slot] = max(
                    widths.get(act.slot, 1), act.source.width or 1
                )
    return widths


def emit_process(process: Process, compiled: Optional[CompiledProcess] = None
                 ) -> str:
    """Emit one SystemVerilog module for ``process``."""
    compiled = compiled or compile_process(process)
    lines: List[str] = []
    w = lines.append

    # -- ports -------------------------------------------------------------
    port_decls = ["input  logic clk_i", "input  logic rst_ni"]
    for ep in process.endpoints.values():
        for spec in endpoint_ports(ep.name, ep.channel, ep.side):
            direction = "output" if spec.direction == "output" else "input "
            rng = f"[{spec.width - 1}:0] " if spec.width > 1 else ""
            port_decls.append(f"{direction} logic {rng}{spec.name}")
    w("// Generated by the Anvil reproduction compiler")
    w(f"module {process.name} (")
    w(",\n".join(f"  {p}" for p in port_decls))
    w(");")
    w("")

    # -- architectural registers -------------------------------------------
    names0 = NameMap(process, 0)
    for reg in process.registers.values():
        rng = f"[{reg.dtype.width - 1}:0] " if reg.dtype.width > 1 else ""
        w(f"  logic {rng}{names0.reg(reg.name)};")
    w("")

    send_drivers: Dict[Tuple[str, str], List[Tuple[str, str]]] = {}
    recv_acks: Dict[Tuple[str, str], List[str]] = {}

    for ti, cthread in enumerate(compiled.threads):
        names = NameMap(process, ti)
        g = cthread.graph
        # reference-count the thread's expression DAG so shared
        # subexpressions are hoisted to wires instead of pasted repeatedly
        _ref_seen: set = set()
        for expr in cthread.cond_exprs.values():
            _count_refs(expr, names, _ref_seen)
        for _ev in g.events:
            for _act in _ev.actions:
                _src = getattr(_act, "source", None)
                if _src is not None:
                    _count_refs(_src, names, _ref_seen)
        w(f"  // ------- thread {ti} ({cthread.kind}): "
          f"{len(g.events)} events -------")
        for slot, width in sorted(_slot_widths(cthread, process).items()):
            rng = f"[{width - 1}:0] " if width > 1 else ""
            w(f"  logic {rng}{names.slot_q(slot)};")
            w(f"  logic {rng}{names.slot(slot)};")
        for ev in g.events:
            w(f"  logic {names.fire(ev.eid)};")
            w(f"  logic {names.fired_q(ev.eid)};")
            if ev.kind is EventKind.DELAY and ev.delay > 1:
                width = max(ev.delay.bit_length(), 1)
                w(f"  logic [{width - 1}:0] {names.cnt(ev.eid)};")
        w("")

        def done(eid: int) -> str:
            return f"({names.fired_q(eid)} | {names.fire(eid)})"

        # fire logic -------------------------------------------------------
        anchor_fire = names.fire(cthread.anchor)
        w(f"  logic t{ti}_boot_q;")
        for ev in g.events:
            preds_done = (
                " & ".join(done(p) for p in ev.preds) if ev.preds else "1'b1"
            )
            pending = f"~{names.fired_q(ev.eid)}"
            if ev.kind is EventKind.ROOT:
                expr = f"t{ti}_boot_q | {anchor_fire}"
            elif ev.kind is EventKind.DELAY:
                if ev.delay == 0:
                    expr = f"{preds_done} & {pending}"
                elif ev.delay == 1:
                    preds_fired = " & ".join(
                        names.fired_q(p) for p in ev.preds
                    ) or "1'b1"
                    expr = f"{preds_fired} & {pending}"
                else:
                    expr = (
                        f"({names.cnt(ev.eid)} == "
                        f"{ev.delay.bit_length()}'d{ev.delay - 1}) & {pending}"
                    )
            elif ev.kind is EventKind.SYNC:
                valid = names.port(ev.endpoint, ev.message, "valid")
                ack = names.port(ev.endpoint, ev.message, "ack")
                msg = process.get_endpoint(ev.endpoint).message(ev.message)
                sender_dyn = msg.sync_of(msg.sender_side()).is_dynamic
                recv_dyn = msg.sync_of(msg.sender_side().other).is_dynamic
                valid_term = valid if sender_dyn else "1'b1"
                ack_term = ack if recv_dyn else "1'b1"
                if ev.conditional:
                    expr = f"{preds_done} & {pending}"
                else:
                    expr = (
                        f"{preds_done} & {pending} & {valid_term} & "
                        f"{ack_term}"
                    )
                active = f"{preds_done} & {pending}"
                for act in ev.actions:
                    if isinstance(act, SyncGuardAction):
                        active = (
                            f"{active} & ({_sv_expr(act.source, names)})"
                        )
                if ev.direction is SyncDir.SEND:
                    for act in ev.actions:
                        if isinstance(act, SendDataAction):
                            send_drivers.setdefault(
                                (ev.endpoint, ev.message), []
                            ).append((active, _sv_expr(act.source, names)))
                else:
                    recv_acks.setdefault(
                        (ev.endpoint, ev.message), []
                    ).append(active)
            elif ev.kind is EventKind.BRANCH:
                cond = cthread.cond_exprs.get(ev.cond_id)
                cond_sv = _sv_expr(cond, names) if cond is not None else "1'b0"
                if not ev.polarity:
                    cond_sv = f"~(|{cond_sv})" if False else f"~({cond_sv})"
                parent_fire = " & ".join(
                    names.fire(p) for p in ev.preds
                ) or "1'b1"
                expr = f"{parent_fire} & ({cond_sv})"
            elif ev.kind is EventKind.JOIN_ANY:
                expr = " | ".join(names.fire(p) for p in ev.preds) or "1'b0"
            else:  # JOIN_ALL
                expr = f"{preds_done} & {pending}"
            w(f"  assign {names.fire(ev.eid)} = {expr};")
        w("")

        # sequential state ---------------------------------------------------
        w("  always_ff @(posedge clk_i or negedge rst_ni) begin")
        w("    if (!rst_ni) begin")
        w(f"      t{ti}_boot_q <= 1'b1;")
        for ev in g.events:
            w(f"      {names.fired_q(ev.eid)} <= 1'b0;")
            if ev.kind is EventKind.DELAY and ev.delay > 1:
                w(f"      {names.cnt(ev.eid)} <= '0;")
        w("    end else begin")
        w(f"      t{ti}_boot_q <= 1'b0;")
        w(f"      if ({anchor_fire}) begin")
        for ev in g.events:
            w(f"        {names.fired_q(ev.eid)} <= 1'b0;")
        w("      end else begin")
        for ev in g.events:
            w(
                f"        if ({names.fire(ev.eid)}) "
                f"{names.fired_q(ev.eid)} <= 1'b1;"
            )
        w("      end")
        for ev in g.events:
            if ev.kind is EventKind.DELAY and ev.delay > 1:
                preds_done2 = " & ".join(
                    names.fired_q(p) for p in ev.preds
                ) or "1'b1"
                cnt = names.cnt(ev.eid)
                w(f"      if ({names.fire(ev.eid)}) {cnt} <= '0;")
                w(f"      else if ({preds_done2}) {cnt} <= {cnt} + 1'b1;")
        w("    end")
        w("  end")
        w("")

        # action registers ----------------------------------------------------
        w("  always_ff @(posedge clk_i) begin")
        for ev in g.events:
            for act in ev.actions:
                if isinstance(act, RegWriteAction):
                    w(
                        f"    if ({names.fire(ev.eid)}) "
                        f"{names.reg(act.reg)} <= "
                        f"{_sv_expr(act.source, names)};"
                    )
                elif isinstance(act, RecvBindAction):
                    data = names.port(act.endpoint, act.message, "data")
                    w(
                        f"    if ({names.fire(ev.eid)}) "
                        f"{names.slot_q(act.target)} <= {data};"
                    )
                elif isinstance(act, SyncFlagAction):
                    v = names.port(act.endpoint, act.message, "valid")
                    a2 = names.port(act.endpoint, act.message, "ack")
                    w(
                        f"    if ({names.fire(ev.eid)}) "
                        f"{names.slot_q(act.target)} <= {v} & {a2};"
                    )
                elif isinstance(act, LatchAction):
                    w(
                        f"    if ({names.fire(ev.eid)}) "
                        f"{names.slot_q(act.slot)} <= "
                        f"{_sv_expr(act.source, names)};"
                    )
        w("  end")
        w("")

        # slot bypass wires: same-cycle visibility of latched data
        for ev in g.events:
            for act in ev.actions:
                if isinstance(act, RecvBindAction):
                    data = names.port(act.endpoint, act.message, "data")
                    w(
                        f"  assign {names.slot(act.target)} = "
                        f"{names.fire(ev.eid)} ? {data} : "
                        f"{names.slot_q(act.target)};"
                    )
                elif isinstance(act, SyncFlagAction):
                    v = names.port(act.endpoint, act.message, "valid")
                    a2 = names.port(act.endpoint, act.message, "ack")
                    w(
                        f"  assign {names.slot(act.target)} = "
                        f"{names.fire(ev.eid)} ? ({v} & {a2}) : "
                        f"{names.slot_q(act.target)};"
                    )
                elif isinstance(act, LatchAction):
                    w(
                        f"  assign {names.slot(act.slot)} = "
                        f"{names.fire(ev.eid)} ? "
                        f"{_sv_expr(act.source, names)} : "
                        f"{names.slot_q(act.slot)};"
                    )
        w("")

        # hoisted shared subexpressions (children precede parents)
        for hname, hwidth, htext in list(names.hoisted.values()):
            rng = f"[{hwidth - 1}:0] " if hwidth > 1 else ""
            w(f"  logic {rng}{hname};")
            w(f"  assign {hname} = {htext};")
        w("")

    # -- output port drivers -------------------------------------------------
    for ep in process.endpoints.values():
        for msg in ep.channel:
            key = (ep.name, msg.name)
            names = NameMap(process, 0)
            if ep.sends(msg.name):
                drivers = send_drivers.get(key, [])
                data_port = names.port(ep.name, msg.name, "data")
                valid_port = names.port(ep.name, msg.name, "valid")
                if drivers:
                    mux = f"{msg.dtype.width}'d0"
                    for active, value in drivers:
                        mux = f"({active}) ? ({value}) : {mux}"
                    w(f"  assign {data_port} = {mux};")
                    valid_expr = " | ".join(
                        f"({active})" for active, _ in drivers
                    )
                else:
                    w(f"  assign {data_port} = '0;")
                    valid_expr = "1'b0"
                if msg.sync_of(msg.sender_side()).is_dynamic:
                    w(f"  assign {valid_port} = {valid_expr};")
            else:
                acks = recv_acks.get(key, [])
                ack_port = names.port(ep.name, msg.name, "ack")
                if msg.sync_of(msg.sender_side().other).is_dynamic:
                    expr = " | ".join(f"({a})" for a in acks) or "1'b0"
                    w(f"  assign {ack_port} = {expr};")
    w("")
    w("endmodule")
    return "\n".join(lines) + "\n"


def emit_system(system: System) -> str:
    """Emit all process modules plus a top-level wiring module."""
    chunks: List[str] = []
    seen = set()
    for inst in system.instances.values():
        if inst.process.name not in seen:
            seen.add(inst.process.name)
            chunks.append(emit_process(inst.process))
    # top-level
    lines: List[str] = []
    w = lines.append
    w(f"module {system.name}_top (")
    ext_ports = ["  input  logic clk_i", "  input  logic rst_ni"]
    for chan in system.channels:
        for side in (Side.LEFT, Side.RIGHT):
            if side not in chan.ends:
                for msg in chan.channel:
                    width = msg.dtype.width
                    rng = f"[{width - 1}:0] " if width > 1 else ""
                    sender_ext = msg.sender_side() is side
                    d = "input " if sender_ext else "output"
                    ext_ports.append(
                        f"  {d} logic {rng}ch{chan.cid}_{msg.name}_data"
                    )
                    ext_ports.append(
                        f"  {d} logic ch{chan.cid}_{msg.name}_valid"
                    )
                    nd = "output" if sender_ext else "input "
                    ext_ports.append(
                        f"  {nd} logic ch{chan.cid}_{msg.name}_ack"
                    )
    w(",\n".join(ext_ports))
    w(");")
    for chan in system.channels:
        for msg in chan.channel:
            width = msg.dtype.width
            rng = f"[{width - 1}:0] " if width > 1 else ""
            w(f"  logic {rng}ch{chan.cid}_{msg.name}_data_w;")
            w(f"  logic ch{chan.cid}_{msg.name}_valid_w;")
            w(f"  logic ch{chan.cid}_{msg.name}_ack_w;")
    for inst in system.instances.values():
        w(f"  {inst.process.name} u_{inst.name} (")
        conns = ["    .clk_i(clk_i)", "    .rst_ni(rst_ni)"]
        for ep_name, (cid, side) in inst.bindings.items():
            ep = inst.process.get_endpoint(ep_name)
            for spec in endpoint_ports(ep_name, ep.channel, ep.side):
                conns.append(
                    f"    .{spec.name}(ch{cid}_{spec.message}_{spec.role}_w)"
                )
        w(",\n".join(conns))
        w("  );")
    w("endmodule")
    chunks.append("\n".join(lines) + "\n")
    return "\n\n".join(chunks)


def structural_check(sv_text: str) -> Dict[str, int]:
    """Cheap well-formedness metrics used by tests."""
    return {
        "modules": sv_text.count("\nmodule ") + sv_text.startswith("module"),
        "endmodules": sv_text.count("endmodule"),
        "always_ff": sv_text.count("always_ff"),
        "assigns": sv_text.count("assign "),
        "begins": sv_text.count("begin"),
        "ends": sv_text.count("end"),
    }
