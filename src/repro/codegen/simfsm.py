"""Executable FSMs: compiled Anvil processes on the RTL simulator.

The paper's compiler lowers the event graph to an FSM with one ``current``
wire per event plus state registers for joins, cycle delays and dynamic
sends/receives (Section 6.2).  This module is the executable analogue: a
:class:`CompiledProcess` holds the (optimized) event graph per thread and
:class:`AnvilProcessModule` interprets it cycle by cycle:

* event firing is computed *combinationally* each settle iteration (the
  ``current`` wires), monotonically within a cycle;
* actions (register writes, data latching, debug prints) commit at the
  clock edge;
* ``loop`` threads respawn an activation at the loop-back anchor; a
  ``recursive`` thread respawns at its ``recurse`` event, so iterations
  overlap exactly as the language semantics prescribe.

Because the type checker has already guaranteed timing safety, the
interpreter needs no value buffering beyond what the FSM itself has --
which is why the generated hardware carries no lifetime bookkeeping.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..core.events import (
    DebugPrintAction,
    EventGraph,
    EventKind,
    RecvBindAction,
    RegWriteAction,
    SendDataAction,
    SyncDir,
    SyncFlagAction,
    SyncGuardAction,
)
from ..core.graph_builder import BuildResult, GraphBuilder, LatchAction
from ..core.optimize import optimize
from ..errors import ContractViolationError, SimulationError
from ..lang.channels import Side
from ..lang.process import Process, System, Thread
from ..rtl.module import Module
from ..rtl.signal import Wire
from . import rexpr as rx


class CompiledThread:
    def __init__(self, graph: EventGraph, root: int, anchor: int, kind: str,
                 cond_exprs: Dict[int, rx.RExpr]):
        self.graph = graph
        self.root = root
        self.anchor = anchor
        self.kind = kind
        self.cond_exprs = cond_exprs  # cond_id -> condition expression


class CompiledProcess:
    """A type-check-free compilation artifact: graphs ready to execute."""

    def __init__(self, process: Process):
        self.process = process
        self.threads: List[CompiledThread] = []
        self.optimize_stats = []


def _collect_cond_exprs(result: BuildResult) -> Dict[int, rx.RExpr]:
    """Map each branch condition id to the *slot* its latch writes.

    The latched slot is combinationally visible in the cycle of the latch
    (slot overlay / bypass wire), so referencing the slot is exact and --
    unlike re-resolving by event position -- survives optimizer merges
    that put several condition latches on one event."""
    out: Dict[int, rx.RExpr] = {}
    for ev in result.graph.events:
        for act in ev.actions:
            if isinstance(act, LatchAction) and act.cond_id >= 0:
                out[act.cond_id] = rx.RSlot(act.slot, 1, f"c{act.cond_id}")
    return out


def compile_process(process: Process, do_optimize: bool = True
                    ) -> CompiledProcess:
    """Compile each thread to a single-iteration event graph + anchor."""
    cp = CompiledProcess(process)
    for thread in process.threads:
        result = GraphBuilder(process, thread).build(iterations=1)
        graph, anchor = result.graph, result.anchor
        if do_optimize:
            graph, mapping, stats = optimize(graph)
            anchor = mapping.get(anchor, anchor)
            cp.optimize_stats.append(stats)
        # cond exprs must be collected against the *final* graph
        tmp = BuildResult(graph, 0, anchor, thread)
        cond_exprs = _collect_cond_exprs(tmp)
        cp.threads.append(
            CompiledThread(graph, 0, anchor, thread.kind, cond_exprs)
        )
    return cp


class MessagePort:
    """The wire triplet of one message on one channel instance."""

    def __init__(self, name: str, width: int):
        self.data = Wire(f"{name}.data", width)
        self.valid = Wire(f"{name}.valid", 1)
        self.ack = Wire(f"{name}.ack", 1)

    def wires(self):
        return (self.data, self.valid, self.ack)

    @property
    def fires(self) -> bool:
        return bool(self.valid.value and self.ack.value)

    def __repr__(self):
        return (
            f"MessagePort(data={self.data.value:#x} "
            f"v={self.valid.value} a={self.ack.value})"
        )


class _SlotView:
    """Committed slots with a same-cycle overlay (the hardware's bypass
    path: data latched this cycle is combinationally visible)."""

    __slots__ = ("base", "overlay")

    def __init__(self, base: Dict[int, int], overlay: Dict[int, int]):
        self.base = base
        self.overlay = overlay

    def get(self, key, default=0):
        if key in self.overlay:
            return self.overlay[key]
        return self.base.get(key, default)


class Activation:
    """One in-flight iteration of a thread."""

    __slots__ = ("start", "fired", "dead", "slots", "spawned", "retired",
                 "cache")

    def __init__(self, start: int):
        self.start = start
        self.fired: Dict[int, int] = {}  # eid -> cycle
        self.dead: set = set()
        self.slots: Dict[int, int] = {}
        self.spawned = False
        self.retired = False
        # (cycle, fired_now, dead_now, overlay) from the last settled
        # eval_comb; consumed by tick() so the clock edge does not
        # recompute the fire set the settle phase already produced
        self.cache: Optional[Tuple] = None


class AnvilProcessModule(Module):
    """Run-time instance of a compiled process."""

    MAX_ACTIVATIONS = 64
    MAX_SPAWNS_PER_CYCLE = 16

    def __init__(self, compiled: CompiledProcess, name: str = ""):
        super().__init__(name or compiled.process.name)
        self.compiled = compiled
        self.process = compiled.process
        self.regs: Dict[str, int] = {
            r.name: r.init for r in self.process.registers.values()
        }
        # endpoint -> message -> MessagePort (shared with the counterpart)
        self.ports: Dict[str, Dict[str, MessagePort]] = {}
        self.sides: Dict[str, Side] = {}
        self.cycle = 0
        self.debug_log: List[Tuple[int, str, Optional[int]]] = []
        self.print_debug = False
        self._threads_rt: List[List[Activation]] = [
            [] for _ in compiled.threads
        ]
        self._tentative: List[List[Activation]] = [
            [] for _ in compiled.threads
        ]
        self._reg_writes: List[Tuple[str, int]] = []
        self._started = False
        self._sender_memo: Dict[Tuple[str, str], bool] = {}
        self._release_wires: List[Wire] = []   # handshake outputs to drop

    # -- wiring -----------------------------------------------------------
    def bind_endpoint(self, endpoint: str, side: Side,
                      ports: Dict[str, MessagePort]):
        self.ports[endpoint] = ports
        self.sides[endpoint] = side
        for m, p in ports.items():
            self.adopt(p.data)
            self.adopt(p.valid)
            self.adopt(p.ack)
            self._release_wires.append(
                p.valid if self._is_sender(endpoint, m) else p.ack
            )

    def _is_sender(self, endpoint: str, message: str) -> bool:
        key = (endpoint, message)
        hit = self._sender_memo.get(key)
        if hit is None:
            ep = self.process.get_endpoint(endpoint)
            hit = ep.sends(message)
            self._sender_memo[key] = hit
        return hit

    # -- scheduler registration --------------------------------------------
    # The compiled FSM's combinational block is exactly its handshake
    # logic: as a sender it drives valid/data and reacts to the ack, as a
    # receiver it drives the ack and reacts to valid/data.  Registers,
    # slots and activation state only change at the clock edge, so they
    # need no sensitivity edges.  Declaring this lets the levelized
    # scheduler wire compiled processes into a precise dependency graph
    # instead of the conservative all-wires default.
    def comb_inputs(self):
        ins = []
        for ep, msgs in self.ports.items():
            for m, port in msgs.items():
                if self._is_sender(ep, m):
                    ins.append(port.ack)
                else:
                    ins.append(port.valid)
                    ins.append(port.data)
        return ins

    def comb_outputs(self):
        outs = []
        for ep, msgs in self.ports.items():
            for m, port in msgs.items():
                if self._is_sender(ep, m):
                    outs.append(port.valid)
                    outs.append(port.data)
                else:
                    outs.append(port.ack)
        return outs

    # -- expression environment ---------------------------------------------
    def _env(self, act: Activation, overlay: Optional[Dict[int, int]] = None
             ) -> rx.REnv:
        def ready_fn(endpoint, message):
            port = self.ports[endpoint][message]
            if self._is_sender(endpoint, message):
                return port.ack.value
            return port.valid.value

        slots = act.slots if overlay is None else _SlotView(act.slots, overlay)
        return rx.REnv(self.regs, slots, ready_fn)

    # -- combinational phase ---------------------------------------------
    def eval_comb(self):
        if not self._started:
            for ti in range(len(self.compiled.threads)):
                if not self._threads_rt[ti]:
                    self._threads_rt[ti].append(Activation(0))
            self._started = True
        # release our handshake outputs, then re-drive below
        for w in self._release_wires:
            w.value = 0
        for ti, cthread in enumerate(self.compiled.threads):
            self._tentative[ti] = []
            acts = [a for a in self._threads_rt[ti] if not a.retired]
            self._eval_thread(cthread, acts, self._tentative[ti])

    def _eval_thread(self, cthread: CompiledThread, acts: List[Activation],
                     tentative: List[Activation]):
        g = cthread.graph
        queue = list(acts)
        spawns = 0
        busy_messages: set = set()
        idx = 0
        while idx < len(queue):
            act = queue[idx]
            idx += 1
            fired_now, dead_now, overlay = self._fire_set(
                cthread, act, busy_messages
            )
            act.cache = (self.cycle, fired_now, dead_now, overlay)
            anchor_fires = (
                cthread.anchor in fired_now
                or cthread.anchor in act.fired
            )
            if anchor_fires and not act.spawned:
                spawns += 1
                if spawns > self.MAX_SPAWNS_PER_CYCLE:
                    raise SimulationError(
                        f"{self.name}: zero-delay loop detected (thread "
                        f"anchored at e{cthread.anchor})"
                    )
                if len(queue) >= self.MAX_ACTIVATIONS:
                    raise SimulationError(
                        f"{self.name}: too many concurrent activations"
                    )
                child = Activation(self.cycle)
                tentative.append(child)
                queue.append(child)

    def _fire_set(self, cthread: CompiledThread, act: Activation,
                  busy_messages: set):
        """Compute events firing *this* cycle for one activation and drive
        handshake wires for active syncs.  Pure function of settled state;
        re-run every settle iteration (permanent state only commits at the
        clock edge)."""
        g = cthread.graph
        now = self.cycle
        fired_now: Dict[int, int] = {}
        dead_now: set = set()
        overlay: Dict[int, int] = {}
        env = self._env(act, overlay)
        act_fired = act.fired
        act_dead = act.dead
        fired_get = act_fired.get
        now_get = fired_now.get

        def latch_into_overlay(ev):
            for action in ev.actions:
                if isinstance(action, RecvBindAction):
                    port = self.ports[action.endpoint][action.message]
                    overlay[action.target] = port.data.value
                elif isinstance(action, SyncFlagAction):
                    port = self.ports[action.endpoint][action.message]
                    overlay[action.target] = int(port.fires)
                elif isinstance(action, LatchAction):
                    overlay[action.slot] = action.source.eval(env)

        for ev in g.events:
            eid = ev.eid
            if eid in act_fired or eid in act_dead or eid in fired_now \
                    or eid in dead_now:
                continue
            kind = ev.kind
            if kind is EventKind.ROOT:
                if act.start == now:
                    fired_now[eid] = now
                    latch_into_overlay(ev)
                continue
            preds = ev.preds
            if kind is EventKind.JOIN_ANY:
                ready = False
                alive = False
                for p in preds:
                    c = fired_get(p)
                    if c is None:
                        c = now_get(p)
                    if c is not None:
                        ready = alive = True
                        break
                    if not (p in act_dead or p in dead_now):
                        alive = True
                if ready:
                    fired_now[eid] = now
                    latch_into_overlay(ev)
                elif not alive:
                    dead_now.add(eid)
                continue
            # all other kinds require every predecessor
            dead = False
            for p in preds:
                if p in act_dead or p in dead_now:
                    dead = True
                    break
            if dead:
                dead_now.add(eid)
                continue
            base = act.start
            blocked = False
            for p in preds:
                c = fired_get(p)
                if c is None:
                    c = now_get(p)
                    if c is None:
                        blocked = True
                        break
                if c > base:
                    base = c
            if blocked:
                continue
            if kind is EventKind.DELAY:
                if base + ev.delay == now:
                    fired_now[ev.eid] = now
                    latch_into_overlay(ev)
                continue
            if kind is EventKind.JOIN_ALL:
                fired_now[ev.eid] = now
                latch_into_overlay(ev)
                continue
            if kind is EventKind.BRANCH:
                expr = cthread.cond_exprs.get(ev.cond_id)
                cond = expr.eval(env) & 1 if expr is not None else 0
                if bool(cond) == ev.polarity:
                    fired_now[ev.eid] = now
                    latch_into_overlay(ev)
                else:
                    dead_now.add(ev.eid)
                continue
            if kind is EventKind.SYNC:
                key = (ev.endpoint, ev.message)
                if key in busy_messages:
                    continue  # an older activation owns the handshake
                busy_messages.add(key)
                port = self.ports[ev.endpoint][ev.message]
                guard = 1
                for action in ev.actions:
                    if isinstance(action, SyncGuardAction):
                        guard = action.source.eval(env) & 1
                if ev.direction is SyncDir.SEND:
                    payload = 0
                    for action in ev.actions:
                        if isinstance(action, SendDataAction):
                            payload = action.source.eval(env)
                    if guard:
                        port.valid.set(1)
                        port.data.set(payload)
                else:
                    if guard:
                        port.ack.set(1)
                if ev.conditional or port.fires:
                    fired_now[ev.eid] = now
                    latch_into_overlay(ev)
                continue
        return fired_now, dead_now, overlay

    # -- clock edge ---------------------------------------------------------
    def tick(self):
        for ti, cthread in enumerate(self.compiled.threads):
            acts = self._threads_rt[ti]
            acts.extend(self._tentative[ti])
            self._tentative[ti] = []
            busy: set = set()
            for act in acts:
                if act.retired:
                    continue
                cache = act.cache
                act.cache = None
                if cache is not None and cache[0] == self.cycle:
                    # the settle phase already computed this activation's
                    # fire set on the settled wires; reuse it
                    _cyc, fired_now, dead_now, overlay = cache
                else:
                    fired_now, dead_now, overlay = self._fire_set(
                        cthread, act, busy
                    )
                act.dead.update(dead_now)
                env = self._env(act, overlay)
                for eid, cyc in fired_now.items():
                    act.fired[eid] = cyc
                    self._commit_actions(cthread, act, eid, env, overlay)
                if cthread.anchor in fired_now:
                    act.spawned = True
                g = cthread.graph
                if all(
                    e.eid in act.fired or e.eid in act.dead
                    for e in g.events
                ):
                    act.retired = True
            live = [a for a in acts if not a.retired]
            if len(live) < 2:
                self._threads_rt[ti] = live
                continue
            # Activations with identical FSM state are indistinguishable
            # (the generated hardware holds one copy of that state); keep
            # only the oldest of each equivalence class.  This is what
            # stops stalled `recursive` iterations from piling up.
            seen_states = set()
            deduped = []
            for a in live:
                dues = []
                for ev in cthread.graph.events:
                    if ev.kind is EventKind.DELAY and \
                            ev.eid not in a.fired and \
                            ev.eid not in a.dead and ev.preds and \
                            all(p in a.fired for p in ev.preds):
                        base = max(a.fired[p] for p in ev.preds)
                        dues.append((ev.eid, base + ev.delay - self.cycle))
                key = (
                    frozenset(a.fired),
                    frozenset(a.dead),
                    tuple(sorted(a.slots.items())),
                    tuple(sorted(dues)),
                    a.spawned,
                )
                if key in seen_states:
                    continue
                seen_states.add(key)
                deduped.append(a)
            self._threads_rt[ti] = deduped
        for reg, value in self._reg_writes:
            dtype = self.process.registers[reg].dtype
            self.regs[reg] = dtype.mask(value)
        self._reg_writes = []
        self.cycle += 1

    def _commit_actions(self, cthread: CompiledThread, act: Activation,
                        eid: int, env, overlay):
        for action in cthread.graph[eid].actions:
            if isinstance(action, RegWriteAction):
                self._reg_writes.append(
                    (action.reg, action.source.eval(env))
                )
            elif isinstance(action, RecvBindAction):
                port = self.ports[action.endpoint][action.message]
                act.slots[action.target] = overlay.get(
                    action.target, port.data.value
                )
            elif isinstance(action, SyncFlagAction):
                port = self.ports[action.endpoint][action.message]
                act.slots[action.target] = overlay.get(
                    action.target, int(port.fires)
                )
            elif isinstance(action, LatchAction):
                act.slots[action.slot] = overlay.get(
                    action.slot, action.source.eval(env)
                )
            elif isinstance(action, DebugPrintAction):
                value = (
                    action.source.eval(env)
                    if action.source is not None else None
                )
                self.debug_log.append((self.cycle, action.fmt, value))
                if self.print_debug:
                    suffix = "" if value is None else f" {value:#x}"
                    print(f"[{self.cycle}] {self.name}: {action.fmt}{suffix}")
            # SendDataAction handled combinationally

    def reset(self):
        self.regs = {
            r.name: r.init for r in self.process.registers.values()
        }
        self._threads_rt = [[] for _ in self.compiled.threads]
        self._tentative = [[] for _ in self.compiled.threads]
        self._reg_writes = []
        self.cycle = 0
        self._started = False
        self.debug_log = []


class ExternalEndpoint(Module):
    """Test-bench driver for the far side of an exposed channel.

    Provides queue-based ``send``/``expect_recv`` so tests and baseline
    co-simulations can interact with Anvil modules through ordinary
    valid/ack handshakes."""

    def __init__(self, name: str, channel, side: Side,
                 ports: Dict[str, MessagePort]):
        super().__init__(name)
        self.channel = channel
        self.side = side
        self.ports = ports
        for p in ports.values():
            self.adopt(p.data)
            self.adopt(p.valid)
            self.adopt(p.ack)
        self._send_queues: Dict[str, List[int]] = {}
        self._recv_enabled: Dict[str, bool] = {}
        self.received: Dict[str, List[Tuple[int, int]]] = {}
        self.sent: Dict[str, List[Tuple[int, int]]] = {}
        self.cycle = 0
        self._sender_memo: Dict[str, bool] = {
            m: channel.message(m).sender_side() is side for m in ports
        }

    def _is_sender(self, message: str) -> bool:
        hit = self._sender_memo.get(message)
        if hit is None:
            hit = self.channel.message(message).sender_side() is self.side
            self._sender_memo[message] = hit
        return hit

    def send(self, message: str, value: int):
        if not self._is_sender(message):
            raise ContractViolationError(
                f"{self.name} is not the sender of {message!r}"
            )
        self._send_queues.setdefault(message, []).append(value)

    def always_receive(self, message: str, enabled: bool = True):
        if self._is_sender(message):
            raise ContractViolationError(
                f"{self.name} is the sender of {message!r}"
            )
        self._recv_enabled[message] = enabled

    def comb_inputs(self):
        return ()      # drives from queues/flags; reads no wires

    def comb_outputs(self):
        outs = []
        for m, port in self.ports.items():
            if self._is_sender(m):
                outs.append(port.valid)
                outs.append(port.data)
            else:
                outs.append(port.ack)
        return outs

    def eval_comb(self):
        for m, port in self.ports.items():
            if self._is_sender(m):
                queue = self._send_queues.get(m, [])
                if queue:
                    port.valid.set(1)
                    port.data.set(queue[0])
                else:
                    port.valid.set(0)
            else:
                port.ack.set(1 if self._recv_enabled.get(m) else 0)

    def tick(self):
        for m, port in self.ports.items():
            if self._is_sender(m):
                queue = self._send_queues.get(m, [])
                if queue and port.fires:
                    value = queue.pop(0)
                    self.sent.setdefault(m, []).append((self.cycle, value))
            else:
                if port.fires:
                    self.received.setdefault(m, []).append(
                        (self.cycle, port.data.value)
                    )
        self.cycle += 1


class SimulatedSystem:
    """A :class:`~repro.lang.process.System` elaborated onto the simulator."""

    def __init__(self, system: System, sim, modules, externals):
        self.system = system
        self.sim = sim
        self.modules: Dict[str, AnvilProcessModule] = modules
        self.externals: Dict[int, ExternalEndpoint] = externals

    def module(self, name: str) -> AnvilProcessModule:
        return self.modules[name]

    def external(self, chan) -> ExternalEndpoint:
        cid = chan.cid if hasattr(chan, "cid") else chan
        return self.externals[cid]


def build_simulation(system: System, sim=None,
                     do_optimize: bool = True) -> SimulatedSystem:
    """Elaborate a system: compile every process, create channel wires and
    external drivers for exposed endpoints."""
    from ..rtl.simulator import Simulator

    sim = sim or Simulator(system.name)
    compiled: Dict[str, CompiledProcess] = {}
    modules: Dict[str, AnvilProcessModule] = {}
    for inst in system.instances.values():
        if inst.process.name not in compiled:
            compiled[inst.process.name] = compile_process(
                inst.process, do_optimize
            )
        modules[inst.name] = AnvilProcessModule(
            compiled[inst.process.name], inst.name
        )
    externals: Dict[int, ExternalEndpoint] = {}
    for chan in system.channels:
        ports = {
            m.name: MessagePort(
                f"ch{chan.cid}.{m.name}", m.dtype.width
            )
            for m in chan.channel
        }
        for side in (Side.LEFT, Side.RIGHT):
            bound = chan.ends.get(side)
            if bound is not None:
                inst_name, ep_name = bound
                modules[inst_name].bind_endpoint(ep_name, side, ports)
            else:
                ext = ExternalEndpoint(
                    f"ext_ch{chan.cid}", chan.channel, side, ports
                )
                externals[chan.cid] = ext
    for m in modules.values():
        sim.add(m)
    for e in externals.values():
        sim.add(e)
    return SimulatedSystem(system, sim, modules, externals)
