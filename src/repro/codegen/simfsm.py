"""Executable FSMs: compiled Anvil processes on the RTL simulator.

The paper's compiler lowers the event graph to an FSM with one ``current``
wire per event plus state registers for joins, cycle delays and dynamic
sends/receives (Section 6.2).  This module is the executable analogue,
split into three layers:

1. :func:`compile_process` lowers a process through
   :func:`repro.core.fsmplan.build_process_plan` into a backend-neutral
   **FSM plan** (per-thread firing order, latch/commit specs, the exact
   handshake sensitivity sets);
2. :class:`AnvilProcessModule` owns the run-time state -- activations,
   per-activation slots, the register file, handshake ports -- and the
   **reference interpreter** that walks the plan cycle by cycle;
3. ``backend="pycompiled"`` swaps the interpreter's per-thread fire and
   commit steps for functions generated, ``compile()``d and ``exec``'d
   from the same plan by :mod:`repro.codegen.pysim` -- semantically
   identical, several times faster.

Execution semantics (identical across backends):

* event firing is computed *combinationally* each settle iteration (the
  ``current`` wires), monotonically within a cycle;
* actions (register writes, data latching, debug prints) commit at the
  clock edge;
* ``loop`` threads respawn an activation at the loop-back anchor; a
  ``recursive`` thread respawns at its ``recurse`` event, so iterations
  overlap exactly as the language semantics prescribe.

Because the type checker has already guaranteed timing safety, the
backends need no value buffering beyond what the FSM itself has --
which is why the generated hardware carries no lifetime bookkeeping.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Tuple

from ..core.events import EventGraph, EventKind, SyncDir
from ..core.fsmplan import (
    CommitExpr,
    CommitFlag,
    CommitRecv,
    CommitReg,
    LatchFlag,
    LatchRecv,
    ProcessPlan,
    ThreadPlan,
    build_process_plan,
    port_reads,
    port_writes,
)
from ..errors import ContractViolationError, SimulationError
from ..lang.channels import Side
from ..lang.process import Process, System
from ..rtl.module import Module
from ..rtl.signal import Wire
from . import rexpr as rx

#: execution backends an :class:`AnvilProcessModule` can run on
BACKENDS = ("interp", "pycompiled")


class CompiledThread:
    """Legacy view of one thread's compiled graph (the SystemVerilog
    backend and the synthesis cost model consume this shape)."""

    def __init__(self, graph: EventGraph, root: int, anchor: int, kind: str,
                 cond_exprs: Dict[int, rx.RExpr]):
        self.graph = graph
        self.root = root
        self.anchor = anchor
        self.kind = kind
        self.cond_exprs = cond_exprs  # cond_id -> condition expression


class CompiledProcess:
    """A type-check-free compilation artifact: the FSM plan, ready to
    execute, plus the per-thread graph view other backends consume."""

    def __init__(self, process: Process, plan: ProcessPlan):
        self.process = process
        self.plan = plan
        self.optimize_stats = plan.optimize_stats
        self.threads: List[CompiledThread] = [
            CompiledThread(tp.graph, 0, tp.anchor, tp.kind, tp.cond_exprs)
            for tp in plan.threads
        ]


def compile_process(process: Process, do_optimize: bool = True
                    ) -> CompiledProcess:
    """Compile each thread to a single-iteration event graph + plan."""
    return CompiledProcess(process, build_process_plan(process, do_optimize))


class MessagePort:
    """The wire triplet of one message on one channel instance."""

    def __init__(self, name: str, width: int):
        self.data = Wire(f"{name}.data", width)
        self.valid = Wire(f"{name}.valid", 1)
        self.ack = Wire(f"{name}.ack", 1)

    def wires(self):
        return (self.data, self.valid, self.ack)

    @property
    def fires(self) -> bool:
        return bool(self.valid.value and self.ack.value)

    def __repr__(self):
        return (
            f"MessagePort(data={self.data.value:#x} "
            f"v={self.valid.value} a={self.ack.value})"
        )


class _SlotView:
    """Committed slots with a same-cycle overlay (the hardware's bypass
    path: data latched this cycle is combinationally visible)."""

    __slots__ = ("base", "overlay")

    def __init__(self, base: Dict[int, int], overlay: Dict[int, int]):
        self.base = base
        self.overlay = overlay

    def get(self, key, default=0):
        if key in self.overlay:
            return self.overlay[key]
        return self.base.get(key, default)


class Activation:
    """One in-flight iteration of a thread."""

    __slots__ = ("start", "fired", "dead", "slots", "spawned", "retired",
                 "cache")

    def __init__(self, start: int):
        self.start = start
        self.fired: Dict[int, int] = {}  # eid -> cycle
        self.dead: set = set()
        self.slots: Dict[int, int] = {}
        self.spawned = False
        self.retired = False
        # (cycle, fired_now, dead_now, overlay) from the last settled
        # fire pass; consumed by tick() so the clock edge does not
        # recompute the fire set the settle phase already produced
        self.cache: Optional[Tuple] = None


class AnvilProcessModule(Module):
    """Run-time instance of a compiled process.

    ``backend`` selects how the per-thread fire (settle pass) and commit
    (clock edge) steps execute: ``"interp"`` walks the plan with the
    reference interpreter; ``"pycompiled"`` calls the generated-Python
    functions from :mod:`repro.codegen.pysim`.  Everything else --
    activation bookkeeping, spawning, deduplication, retirement -- is
    shared, so the two backends are observationally identical.
    """

    MAX_ACTIVATIONS = 64
    MAX_SPAWNS_PER_CYCLE = 16

    def __init__(self, compiled: CompiledProcess, name: str = "",
                 backend: str = "interp"):
        super().__init__(name or compiled.process.name)
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r} (use 'interp' or 'pycompiled')"
            )
        self.compiled = compiled
        self.plan: ProcessPlan = compiled.plan
        self.process = compiled.process
        self.backend = backend
        self.regs: Dict[str, int] = {
            r.name: r.init for r in self.process.registers.values()
        }
        # endpoint -> message -> MessagePort (shared with the counterpart)
        self.ports: Dict[str, Dict[str, MessagePort]] = {}
        self.sides: Dict[str, Side] = {}
        self.cycle = 0
        self.debug_log: List[Tuple[int, str, Optional[int]]] = []
        self.print_debug = False
        self._threads_rt: List[List[Activation]] = [
            [] for _ in self.plan.threads
        ]
        self._tentative: List[List[Activation]] = [
            [] for _ in self.plan.threads
        ]
        self._reg_writes: List[Tuple[str, int]] = []
        self._started = False
        # flat port-wire table: [data, valid, ack] per plan port, filled
        # by bind_endpoint (None until the endpoint is wired)
        self._pw: List[Optional[Wire]] = [None] * (3 * len(self.plan.ports))
        self._ready_wires: Dict[Tuple[str, str], Wire] = {}
        self._release_wires: List[Wire] = []   # handshake outputs to drop
        if backend == "pycompiled":
            from .pysim import backend_for

            be = backend_for(self.plan)
            self._fire = [partial(f, self) for f in be.fire]
            self._commit = [partial(c, self) for c in be.commit]
        else:
            self._fire = [partial(self._interp_fire, tp)
                          for tp in self.plan.threads]
            self._commit = [partial(self._interp_commit, tp)
                            for tp in self.plan.threads]

    # -- wiring -----------------------------------------------------------
    def bind_endpoint(self, endpoint: str, side: Side,
                      ports: Dict[str, MessagePort]):
        self.ports[endpoint] = ports
        self.sides[endpoint] = side
        for m, p in ports.items():
            self.adopt(p.data)
            self.adopt(p.valid)
            self.adopt(p.ack)
        for pp in self.plan.ports:
            if pp.endpoint != endpoint:
                continue
            port = ports[pp.message]
            base = 3 * pp.index
            self._pw[base] = port.data
            self._pw[base + 1] = port.valid
            self._pw[base + 2] = port.ack
            self._ready_wires[pp.key] = (
                port.ack if pp.is_sender else port.valid
            )
            if pp.drives:
                self._release_wires.append(
                    port.valid if pp.is_sender else port.ack
                )

    def _ready(self, endpoint: str, message: str) -> int:
        return self._ready_wires[(endpoint, message)].value

    # -- scheduler registration --------------------------------------------
    # The compiled FSM's combinational block is exactly its handshake
    # logic, and the plan's port table records precisely which messages
    # the process synchronizes on or observes: as a sender it drives
    # valid/data and reacts to the ack, as a receiver it drives the ack
    # and reacts to valid/data, and a readiness query reads the
    # counterpart's handshake bit.  Registers, slots and activation
    # state only change at the clock edge, so they need no sensitivity
    # edges.  Wires of messages the process is bound to but never uses
    # appear in neither set -- the levelized scheduler gets the exact
    # dependency surface of the generated hardware.
    _ROLE = {"data": 0, "valid": 1, "ack": 2}

    def comb_inputs(self):
        ins = []
        for pp in self.plan.ports:
            base = 3 * pp.index
            for role in port_reads(pp):
                w = self._pw[base + self._ROLE[role]]
                if w is not None:
                    ins.append(w)
        return ins

    def comb_outputs(self):
        outs = []
        for pp in self.plan.ports:
            base = 3 * pp.index
            for role in port_writes(pp):
                w = self._pw[base + self._ROLE[role]]
                if w is not None:
                    outs.append(w)
        return outs

    # -- combinational phase ---------------------------------------------
    def eval_comb(self):
        if not self._started:
            for ti in range(len(self.plan.threads)):
                if not self._threads_rt[ti]:
                    self._threads_rt[ti].append(Activation(0))
            self._started = True
        # release our handshake outputs, then re-drive below
        for w in self._release_wires:
            w.value = 0
        for ti, tp in enumerate(self.plan.threads):
            self._tentative[ti] = []
            acts = [a for a in self._threads_rt[ti] if not a.retired]
            self._eval_thread(ti, tp, acts, self._tentative[ti])

    def _eval_thread(self, ti: int, tp: ThreadPlan, acts: List[Activation],
                     tentative: List[Activation]):
        fire = self._fire[ti]
        queue = list(acts)
        spawns = 0
        busy_messages: set = set()
        anchor = tp.anchor
        idx = 0
        while idx < len(queue):
            act = queue[idx]
            idx += 1
            fired_now, dead_now, overlay = fire(act, busy_messages)
            act.cache = (self.cycle, fired_now, dead_now, overlay)
            anchor_fires = anchor in fired_now or anchor in act.fired
            if anchor_fires and not act.spawned:
                spawns += 1
                if spawns > self.MAX_SPAWNS_PER_CYCLE:
                    raise SimulationError(
                        f"{self.name}: zero-delay loop detected (thread "
                        f"anchored at e{anchor})"
                    )
                if len(queue) >= self.MAX_ACTIVATIONS:
                    raise SimulationError(
                        f"{self.name}: too many concurrent activations"
                    )
                child = Activation(self.cycle)
                tentative.append(child)
                queue.append(child)

    # -- the reference interpreter ----------------------------------------
    def _apply_latches(self, latches, overlay, env):
        pw = self._pw
        for latch in latches:
            t = type(latch)
            if t is LatchRecv:
                overlay[latch.target] = pw[3 * latch.port].value
            elif t is LatchFlag:
                base = 3 * latch.port
                overlay[latch.target] = (
                    1 if (pw[base + 1].value and pw[base + 2].value) else 0
                )
            else:   # LatchExpr
                overlay[latch.slot] = latch.source.eval(env)

    def _interp_fire(self, tp: ThreadPlan, act: Activation, busy: set):
        """Compute events firing *this* cycle for one activation and drive
        handshake wires for active syncs.  Pure function of settled state;
        re-run every settle iteration (permanent state only commits at the
        clock edge)."""
        now = self.cycle
        fired_now: Dict[int, int] = {}
        dead_now: set = set()
        overlay: Dict[int, int] = {}
        env = rx.REnv(self.regs, _SlotView(act.slots, overlay), self._ready)
        af = act.fired
        ad = act.dead
        af_get = af.get
        fn_get = fired_now.get
        pw = self._pw
        start = act.start

        for epl in tp.events:
            eid = epl.eid
            if eid in af or eid in ad or eid in fired_now \
                    or eid in dead_now:
                continue
            kind = epl.kind
            if kind is EventKind.ROOT:
                if start == now:
                    fired_now[eid] = now
                    if epl.latches:
                        self._apply_latches(epl.latches, overlay, env)
                continue
            preds = epl.preds
            if kind is EventKind.JOIN_ANY:
                ready = False
                alive = False
                for p in preds:
                    c = af_get(p)
                    if c is None:
                        c = fn_get(p)
                    if c is not None:
                        ready = alive = True
                        break
                    if not (p in ad or p in dead_now):
                        alive = True
                if ready:
                    fired_now[eid] = now
                    if epl.latches:
                        self._apply_latches(epl.latches, overlay, env)
                elif not alive:
                    dead_now.add(eid)
                continue
            # all other kinds require every predecessor
            dead = False
            for p in preds:
                if p in ad or p in dead_now:
                    dead = True
                    break
            if dead:
                dead_now.add(eid)
                continue
            base = start
            blocked = False
            for p in preds:
                c = af_get(p)
                if c is None:
                    c = fn_get(p)
                    if c is None:
                        blocked = True
                        break
                if c > base:
                    base = c
            if blocked:
                continue
            if kind is EventKind.DELAY:
                if base + epl.delay == now:
                    fired_now[eid] = now
                    if epl.latches:
                        self._apply_latches(epl.latches, overlay, env)
                continue
            if kind is EventKind.JOIN_ALL:
                fired_now[eid] = now
                if epl.latches:
                    self._apply_latches(epl.latches, overlay, env)
                continue
            if kind is EventKind.BRANCH:
                expr = epl.cond_expr
                cond = expr.eval(env) & 1 if expr is not None else 0
                if bool(cond) == epl.polarity:
                    fired_now[eid] = now
                    if epl.latches:
                        self._apply_latches(epl.latches, overlay, env)
                else:
                    dead_now.add(eid)
                continue
            # SYNC
            key = epl.sync_key
            if key in busy:
                continue  # an older activation owns the handshake
            busy.add(key)
            base3 = 3 * epl.port
            guard = 1 if epl.guard is None else epl.guard.eval(env) & 1
            if epl.direction is SyncDir.SEND:
                if guard:
                    pw[base3 + 1].value = 1
                    dw = pw[base3]
                    payload = (
                        epl.payload.eval(env)
                        if epl.payload is not None else 0
                    )
                    dw.value = payload & dw.mask
            else:
                if guard:
                    pw[base3 + 2].value = 1
            if epl.conditional or (pw[base3 + 1].value
                                   and pw[base3 + 2].value):
                fired_now[eid] = now
                if epl.latches:
                    self._apply_latches(epl.latches, overlay, env)
        return fired_now, dead_now, overlay

    def _interp_commit(self, tp: ThreadPlan, act: Activation,
                       fired_now: Dict[int, int], overlay: Dict[int, int]):
        act.fired.update(fired_now)
        if not fired_now:
            return
        env = rx.REnv(self.regs, _SlotView(act.slots, overlay), self._ready)
        now = self.cycle
        pw = self._pw
        slots = act.slots
        events = tp.events
        for eid in fired_now:
            for c in events[eid].commits:
                t = type(c)
                if t is CommitReg:
                    self._reg_writes.append((c.reg, c.source.eval(env)))
                elif t is CommitRecv:
                    slots[c.target] = overlay.get(
                        c.target, pw[3 * c.port].value
                    )
                elif t is CommitFlag:
                    base = 3 * c.port
                    slots[c.target] = overlay.get(
                        c.target,
                        1 if (pw[base + 1].value and pw[base + 2].value)
                        else 0,
                    )
                elif t is CommitExpr:
                    slots[c.slot] = overlay.get(
                        c.slot, c.source.eval(env)
                    )
                else:   # CommitPrint
                    value = (
                        c.source.eval(env)
                        if c.source is not None else None
                    )
                    self.debug_log.append((now, c.fmt, value))
                    if self.print_debug:
                        suffix = "" if value is None else f" {value:#x}"
                        print(f"[{now}] {self.name}: {c.fmt}{suffix}")

    # -- clock edge ---------------------------------------------------------
    def tick(self):
        for ti, tp in enumerate(self.plan.threads):
            acts = self._threads_rt[ti]
            acts.extend(self._tentative[ti])
            self._tentative[ti] = []
            fire = self._fire[ti]
            commit = self._commit[ti]
            n_events = tp.n_events
            busy: set = set()
            for act in acts:
                if act.retired:
                    continue
                cache = act.cache
                act.cache = None
                if cache is not None and cache[0] == self.cycle:
                    # the settle phase already computed this activation's
                    # fire set on the settled wires; reuse it
                    _cyc, fired_now, dead_now, overlay = cache
                else:
                    fired_now, dead_now, overlay = fire(act, busy)
                act.dead.update(dead_now)
                commit(act, fired_now, overlay)
                if tp.anchor in fired_now:
                    act.spawned = True
                if len(act.fired) + len(act.dead) == n_events:
                    act.retired = True
            live = [a for a in acts if not a.retired]
            if len(live) < 2:
                self._threads_rt[ti] = live
                continue
            # Activations with identical FSM state are indistinguishable
            # (the generated hardware holds one copy of that state); keep
            # only the oldest of each equivalence class.  This is what
            # stops stalled `recursive` iterations from piling up.
            seen_states = set()
            deduped = []
            for a in live:
                dues = []
                for eid, preds, delay in tp.delays:
                    if eid not in a.fired and eid not in a.dead and preds \
                            and all(p in a.fired for p in preds):
                        base = max(a.fired[p] for p in preds)
                        dues.append((eid, base + delay - self.cycle))
                key = (
                    frozenset(a.fired),
                    frozenset(a.dead),
                    tuple(sorted(a.slots.items())),
                    tuple(sorted(dues)),
                    a.spawned,
                )
                if key in seen_states:
                    continue
                seen_states.add(key)
                deduped.append(a)
            self._threads_rt[ti] = deduped
        for reg, value in self._reg_writes:
            dtype = self.process.registers[reg].dtype
            self.regs[reg] = dtype.mask(value)
        self._reg_writes = []
        self.cycle += 1

    def reset(self):
        self.regs = {
            r.name: r.init for r in self.process.registers.values()
        }
        self._threads_rt = [[] for _ in self.plan.threads]
        self._tentative = [[] for _ in self.plan.threads]
        self._reg_writes = []
        self.cycle = 0
        self._started = False
        self.debug_log = []


class ExternalEndpoint(Module):
    """Test-bench driver for the far side of an exposed channel.

    Provides queue-based ``send``/``expect_recv`` so tests and baseline
    co-simulations can interact with Anvil modules through ordinary
    valid/ack handshakes."""

    def __init__(self, name: str, channel, side: Side,
                 ports: Dict[str, MessagePort]):
        super().__init__(name)
        self.channel = channel
        self.side = side
        self.ports = ports
        for p in ports.values():
            self.adopt(p.data)
            self.adopt(p.valid)
            self.adopt(p.ack)
        self._send_queues: Dict[str, List[int]] = {}
        self._recv_enabled: Dict[str, bool] = {}
        self.received: Dict[str, List[Tuple[int, int]]] = {}
        self.sent: Dict[str, List[Tuple[int, int]]] = {}
        self.cycle = 0
        self._sender_memo: Dict[str, bool] = {
            m: channel.message(m).sender_side() is side for m in ports
        }

    def _is_sender(self, message: str) -> bool:
        hit = self._sender_memo.get(message)
        if hit is None:
            hit = self.channel.message(message).sender_side() is self.side
            self._sender_memo[message] = hit
        return hit

    def send(self, message: str, value: int):
        if not self._is_sender(message):
            raise ContractViolationError(
                f"{self.name} is not the sender of {message!r}"
            )
        self._send_queues.setdefault(message, []).append(value)

    def always_receive(self, message: str, enabled: bool = True):
        if self._is_sender(message):
            raise ContractViolationError(
                f"{self.name} is the sender of {message!r}"
            )
        self._recv_enabled[message] = enabled

    def comb_inputs(self):
        return ()      # drives from queues/flags; reads no wires

    def comb_outputs(self):
        outs = []
        for m, port in self.ports.items():
            if self._is_sender(m):
                outs.append(port.valid)
                outs.append(port.data)
            else:
                outs.append(port.ack)
        return outs

    def eval_comb(self):
        for m, port in self.ports.items():
            if self._is_sender(m):
                queue = self._send_queues.get(m, [])
                if queue:
                    port.valid.set(1)
                    port.data.set(queue[0])
                else:
                    port.valid.set(0)
            else:
                port.ack.set(1 if self._recv_enabled.get(m) else 0)

    def tick(self):
        for m, port in self.ports.items():
            if self._is_sender(m):
                queue = self._send_queues.get(m, [])
                if queue and port.fires:
                    value = queue.pop(0)
                    self.sent.setdefault(m, []).append((self.cycle, value))
            else:
                if port.fires:
                    self.received.setdefault(m, []).append(
                        (self.cycle, port.data.value)
                    )
        self.cycle += 1


class SimulatedSystem:
    """A :class:`~repro.lang.process.System` elaborated onto the simulator."""

    def __init__(self, system: System, sim, modules, externals,
                 backend: str = "interp"):
        self.system = system
        self.sim = sim
        self.backend = backend
        self.modules: Dict[str, AnvilProcessModule] = modules
        self.externals: Dict[int, ExternalEndpoint] = externals

    def module(self, name: str) -> AnvilProcessModule:
        return self.modules[name]

    def external(self, chan) -> ExternalEndpoint:
        cid = chan.cid if hasattr(chan, "cid") else chan
        return self.externals[cid]


def build_simulation(system: System, sim=None, do_optimize: bool = True,
                     backend: str = "interp",
                     engine: str = "levelized") -> SimulatedSystem:
    """Elaborate a system: compile every process, create channel wires and
    external drivers for exposed endpoints.

    ``backend`` selects the execution backend of every compiled process
    module (``"interp"`` or ``"pycompiled"``); ``engine`` the settle
    engine of the simulator created when ``sim`` is not supplied (an
    existing ``sim`` keeps its own engine).  All combinations are
    observationally identical."""
    from ..rtl.simulator import Simulator

    sim = sim or Simulator(system.name, engine=engine)
    compiled: Dict[str, CompiledProcess] = {}
    modules: Dict[str, AnvilProcessModule] = {}
    for inst in system.instances.values():
        if inst.process.name not in compiled:
            compiled[inst.process.name] = compile_process(
                inst.process, do_optimize
            )
        modules[inst.name] = AnvilProcessModule(
            compiled[inst.process.name], inst.name, backend=backend
        )
    externals: Dict[int, ExternalEndpoint] = {}
    for chan in system.channels:
        ports = {
            m.name: MessagePort(
                f"ch{chan.cid}.{m.name}", m.dtype.width
            )
            for m in chan.channel
        }
        for side in (Side.LEFT, Side.RIGHT):
            bound = chan.ends.get(side)
            if bound is not None:
                inst_name, ep_name = bound
                modules[inst_name].bind_endpoint(ep_name, side, ports)
            else:
                ext = ExternalEndpoint(
                    f"ext_ch{chan.cid}", chan.channel, side, ports
                )
                externals[chan.cid] = ext
    for m in modules.values():
        sim.add(m)
    for e in externals.values():
        sim.add(e)
    return SimulatedSystem(system, sim, modules, externals, backend=backend)
