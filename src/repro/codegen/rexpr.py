"""Runtime expression IR.

The graph builder splits each Anvil term into (a) timing structure -- events
in the event graph -- and (b) a *runtime expression* describing the
combinational value the term denotes.  Runtime expressions are evaluated by
the simulator against the current register file and per-activation slot
storage, pretty-printed by the SystemVerilog backend, and lowered to
inline Python source by :meth:`RExpr.to_python` for the generated-Python
simulation backend (:mod:`repro.codegen.pysim`).  Because the
type checker guarantees that every register a value depends on stays
unchanged throughout the value's uses, evaluating lazily at use time is
equivalent to the wire semantics of the generated hardware.
"""

from __future__ import annotations

from typing import Dict

from ..lang.types import Bundle


def mask(value: int, width: int) -> int:
    return value & ((1 << width) - 1)


class REnv:
    """Evaluation environment: register file, slots, handshake observers."""

    def __init__(self, regs, slots, ready_fn=None):
        self.regs = regs
        self.slots = slots
        self.ready_fn = ready_fn or (lambda ep, msg: 0)


class RExpr:
    width: int = 1

    def eval(self, env: REnv) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def to_python(self, ctx) -> str:  # pragma: no cover - interface
        """Emit a Python expression computing exactly what :meth:`eval`
        returns.  The expression may reference the names the generated
        backend binds locally -- ``_r`` (register file), ``_sl``
        (committed slots), ``_ov`` (same-cycle overlay) -- plus whatever
        ``ctx`` hands out: ``ctx.ready(ep, msg)`` for handshake
        observations, ``ctx.const(value)`` for pooled constants and
        ``ctx.temp()`` for fresh local names."""
        raise NotImplementedError

    def gate_count(self) -> Dict[str, int]:
        """Rough decomposition into gates, used by the synthesis model."""
        return {}

    def depth(self) -> int:
        """Levels of logic (for the fmax model)."""
        return 0

    def children(self):
        return ()


class RUnit(RExpr):
    width = 0

    def eval(self, env):
        return 0

    def to_python(self, ctx):
        return "0"

    def __repr__(self):
        return "()"


class RLit(RExpr):
    def __init__(self, value: int, width: int):
        self.width = max(width, 1)
        self.value = mask(value, self.width)

    def eval(self, env):
        return self.value

    def to_python(self, ctx):
        return str(self.value)

    def __repr__(self):
        return f"{self.width}'d{self.value}"


class RReg(RExpr):
    def __init__(self, name: str, width: int):
        self.name = name
        self.width = width

    def eval(self, env):
        return mask(env.regs[self.name], self.width)

    def to_python(self, ctx):
        return f"(_r[{self.name!r}] & {(1 << self.width) - 1})"

    def __repr__(self):
        return f"*{self.name}"


class RSlot(RExpr):
    """A per-activation storage slot (latched receive data, let bindings,
    branch conditions)."""

    def __init__(self, slot: int, width: int, note: str = ""):
        self.slot = slot
        self.width = width
        self.note = note

    def eval(self, env):
        return mask(env.slots.get(self.slot, 0), self.width)

    def to_python(self, ctx):
        s = self.slot
        return (f"((_ov[{s}] if {s} in _ov else _sl.get({s}, 0))"
                f" & {(1 << self.width) - 1})")

    def __repr__(self):
        return f"slot{self.slot}" + (f"({self.note})" if self.note else "")


_BIN_GATES = {
    # per-bit gate estimates for the synthesis cost model
    "add": {"xor": 2, "and": 2},        # full adder per bit
    "sub": {"xor": 2, "and": 2, "inv": 1},
    "mul": {"and": 1, "xor": 2},        # array multiplier, per partial bit
    "and": {"and": 1},
    "or": {"or": 1},
    "xor": {"xor": 1},
    "eq": {"xor": 1, "or": 1},
    "ne": {"xor": 1, "or": 1},
    "lt": {"xor": 1, "and": 1},
    "le": {"xor": 1, "and": 1},
    "gt": {"xor": 1, "and": 1},
    "ge": {"xor": 1, "and": 1},
    "shl": {"mux2": 4},
    "shr": {"mux2": 4},
    "concat": {},
}

_BIN_DEPTH = {
    "add": 2, "sub": 2, "mul": 4, "and": 1, "or": 1, "xor": 1,
    "eq": 2, "ne": 2, "lt": 2, "le": 2, "gt": 2, "ge": 2,
    "shl": 3, "shr": 3, "concat": 0,
}


class RBin(RExpr):
    def __init__(self, op: str, a: RExpr, b: RExpr, width: int):
        self.op = op
        self.a = a
        self.b = b
        self.width = width

    def children(self):
        return (self.a, self.b)

    def eval(self, env):
        x = self.a.eval(env)
        y = self.b.eval(env)
        op = self.op
        aw = max(self.a.width, self.b.width, 1)
        if op == "add":
            return mask(x + y, self.width)
        if op == "sub":
            return mask(x - y, self.width)
        if op == "mul":
            return mask(x * y, self.width)
        if op == "and":
            return mask(x & y, self.width)
        if op == "or":
            return mask(x | y, self.width)
        if op == "xor":
            return mask(x ^ y, self.width)
        if op == "eq":
            return int(mask(x, aw) == mask(y, aw))
        if op == "ne":
            return int(mask(x, aw) != mask(y, aw))
        if op == "lt":
            return int(mask(x, aw) < mask(y, aw))
        if op == "le":
            return int(mask(x, aw) <= mask(y, aw))
        if op == "gt":
            return int(mask(x, aw) > mask(y, aw))
        if op == "ge":
            return int(mask(x, aw) >= mask(y, aw))
        if op == "shl":
            return mask(x << y, self.width)
        if op == "shr":
            return mask(x >> y, self.width)
        if op == "concat":
            return mask((x << self.b.width) | mask(y, self.b.width), self.width)
        raise AssertionError(op)

    def to_python(self, ctx):
        a = ctx.sub(self.a)
        b = ctx.sub(self.b)
        op = self.op
        m = (1 << self.width) - 1
        # operands are already masked to their own widths by their own
        # to_python, so the comparison-width masking eval() performs is
        # the identity here
        if op == "add":
            return f"((({a}) + ({b})) & {m})"
        if op == "sub":
            return f"((({a}) - ({b})) & {m})"
        if op == "mul":
            return f"((({a}) * ({b})) & {m})"
        if op == "and":
            return f"((({a}) & ({b})) & {m})"
        if op == "or":
            return f"((({a}) | ({b})) & {m})"
        if op == "xor":
            return f"((({a}) ^ ({b})) & {m})"
        if op in ("eq", "ne", "lt", "le", "gt", "ge"):
            pyop = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=",
                    "gt": ">", "ge": ">="}[op]
            return f"(1 if ({a}) {pyop} ({b}) else 0)"
        if op == "shl":
            return f"((({a}) << ({b})) & {m})"
        if op == "shr":
            return f"((({a}) >> ({b})) & {m})"
        if op == "concat":
            return f"(((({a}) << {self.b.width}) | ({b})) & {m})"
        raise AssertionError(op)

    def gate_count(self):
        out: Dict[str, int] = {}
        if self.op in ("shl", "shr") and isinstance(self.b, RLit):
            return out  # constant shift: pure wiring
        if self.op in ("and", "or") and (
            isinstance(self.a, RLit) or isinstance(self.b, RLit)
        ):
            return out  # constant mask: bit selection, pure wiring
        per_bit = _BIN_GATES[self.op]
        bits = max(self.a.width, self.b.width, 1)
        if self.op == "mul":
            bits = self.a.width * max(self.b.width, 1)
        for g, n in per_bit.items():
            out[g] = out.get(g, 0) + n * bits
        return out

    def depth(self):
        if self.op in ("shl", "shr") and isinstance(self.b, RLit):
            return 0  # constant shift: pure wiring
        if self.op in ("and", "or") and (
            isinstance(self.a, RLit) or isinstance(self.b, RLit)
        ):
            return 0
        base = _BIN_DEPTH[self.op]
        if self.op in ("add", "sub", "lt", "le", "gt", "ge"):
            # log-depth carry tree
            bits = max(self.a.width, self.b.width, 1)
            base += max(bits.bit_length() - 1, 0)
        return base

    def __repr__(self):
        return f"({self.a!r} {self.op} {self.b!r})"


class RUn(RExpr):
    def __init__(self, op: str, a: RExpr, width: int):
        self.op = op
        self.a = a
        self.width = width

    def children(self):
        return (self.a,)

    def eval(self, env):
        x = self.a.eval(env)
        if self.op == "not":
            return mask(~x, self.width)
        if self.op == "neg":
            return mask(-x, self.width)
        if self.op == "redor":
            return int(mask(x, self.a.width) != 0)
        if self.op == "redand":
            return int(mask(x, self.a.width) == (1 << self.a.width) - 1)
        if self.op == "redxor":
            return bin(mask(x, self.a.width)).count("1") & 1
        raise AssertionError(self.op)

    def to_python(self, ctx):
        a = ctx.sub(self.a)
        m = (1 << self.width) - 1
        if self.op == "not":
            return f"((~({a})) & {m})"
        if self.op == "neg":
            return f"((-({a})) & {m})"
        if self.op == "redor":
            return f"(1 if ({a}) != 0 else 0)"
        if self.op == "redand":
            return f"(1 if ({a}) == {(1 << self.a.width) - 1} else 0)"
        if self.op == "redxor":
            return f"(({a}).bit_count() & 1)"
        raise AssertionError(self.op)

    def gate_count(self):
        if self.op in ("not", "neg"):
            return {"inv": self.width}
        return {"or" if self.op == "redor" else "and": self.a.width}

    def depth(self):
        return 1 if self.op in ("not", "neg") else max(
            self.a.width.bit_length() - 1, 1
        )

    def __repr__(self):
        return f"({self.op} {self.a!r})"


class RSlice(RExpr):
    def __init__(self, a: RExpr, hi: int, lo: int):
        self.a = a
        self.hi = hi
        self.lo = lo
        self.width = hi - lo + 1

    def children(self):
        return (self.a,)

    def eval(self, env):
        return mask(self.a.eval(env) >> self.lo, self.width)

    def to_python(self, ctx):
        return (f"((({ctx.sub(self.a)}) >> {self.lo})"
                f" & {(1 << self.width) - 1})")

    def __repr__(self):
        return f"{self.a!r}[{self.hi}:{self.lo}]"


class RField(RExpr):
    def __init__(self, a: RExpr, dtype: Bundle, name: str):
        lo, w = dtype.field_range(name)
        self.a = a
        self.dtype = dtype
        self.name = name
        self.lo = lo
        self.width = w

    def children(self):
        return (self.a,)

    def eval(self, env):
        return mask(self.a.eval(env) >> self.lo, self.width)

    def to_python(self, ctx):
        return (f"((({ctx.sub(self.a)}) >> {self.lo})"
                f" & {(1 << self.width) - 1})")

    def __repr__(self):
        return f"{self.a!r}.{self.name}"


class RBundle(RExpr):
    def __init__(self, dtype: Bundle, fields: Dict[str, RExpr]):
        self.dtype = dtype
        self.fields = fields
        self.width = dtype.width

    def children(self):
        return tuple(self.fields.values())

    def eval(self, env):
        return self.dtype.pack(
            {k: v.eval(env) for k, v in self.fields.items()}
        )

    def to_python(self, ctx):
        # inline Bundle.pack: mask each field to its *field* width and
        # shift into place, LSB-first
        parts = []
        lo = 0
        for name, ftype in self.dtype.fields:
            sub = self.fields.get(name)
            if sub is not None:
                fm = (1 << ftype.width) - 1
                term = f"((({ctx.sub(sub)}) & {fm}) << {lo})" if lo \
                    else f"(({ctx.sub(sub)}) & {fm})"
                parts.append(term)
            lo += ftype.width
        return f"({' | '.join(parts)})" if parts else "0"

    def __repr__(self):
        return f"{{{', '.join(self.fields)}}}"


class RMux(RExpr):
    def __init__(self, cond: RExpr, a: RExpr, b: RExpr, width: int):
        self.cond = cond
        self.a = a
        self.b = b
        self.width = width

    def children(self):
        return (self.cond, self.a, self.b)

    def eval(self, env):
        return mask(
            self.a.eval(env) if self.cond.eval(env) & 1 else self.b.eval(env),
            self.width,
        )

    def to_python(self, ctx):
        return (f"((({ctx.sub(self.a)}) if "
                f"(({ctx.sub(self.cond)}) & 1) else "
                f"({ctx.sub(self.b)})) & {(1 << self.width) - 1})")

    def gate_count(self):
        return {"mux2": self.width}

    def depth(self):
        return 1

    def __repr__(self):
        return f"({self.cond!r} ? {self.a!r} : {self.b!r})"


class RTable(RExpr):
    """Combinational lookup table (LUT/ROM); index truncated to the table
    size.  Gate cost models LUT mapping: one 4-input LUT cell per 4 bits of
    table content."""

    def __init__(self, index: RExpr, entries, width: int):
        self.index = index
        self.entries = tuple(entries)
        self.width = width
        self._idx_bits = max((len(self.entries) - 1).bit_length(), 1)

    def children(self):
        return (self.index,)

    def eval(self, env):
        i = self.index.eval(env) & ((1 << self._idx_bits) - 1)
        if i >= len(self.entries):
            return 0
        return mask(self.entries[i], self.width)

    def to_python(self, ctx):
        table = ctx.const(tuple(
            mask(e, self.width) for e in self.entries
        ))
        tmp = ctx.temp()
        im = (1 << self._idx_bits) - 1
        return (f"(({table}[{tmp}]) if "
                f"({tmp} := (({ctx.sub(self.index)}) & {im}))"
                f" < {len(self.entries)} else 0)")

    def gate_count(self):
        return {"lut4": max(len(self.entries) * self.width // 16, 1)}

    def depth(self):
        return max(self._idx_bits // 2, 1)

    def __repr__(self):
        return f"table[{len(self.entries)}x{self.width}]"


class RReady(RExpr):
    width = 1

    def __init__(self, endpoint: str, message: str):
        self.endpoint = endpoint
        self.message = message

    def eval(self, env):
        return int(bool(env.ready_fn(self.endpoint, self.message)))

    def to_python(self, ctx):
        return f"(1 if {ctx.ready(self.endpoint, self.message)} else 0)"

    def __repr__(self):
        return f"ready({self.endpoint}.{self.message})"


def walk(expr: RExpr):
    """Yield every node of an expression tree."""
    yield expr
    for c in expr.children():
        yield from walk(c)


def total_gates(expr: RExpr) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for node in walk(expr):
        for g, n in node.gate_count().items():
            out[g] = out.get(g, 0) + n
    return out


def total_depth(expr: RExpr) -> int:
    own = expr.depth()
    kids = [total_depth(c) for c in expr.children()]
    return own + (max(kids) if kids else 0)
