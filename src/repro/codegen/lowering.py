"""Message lowering: channel messages -> module ports (Section 6.2).

Each message of an endpoint maps to up to three ports:

* ``<msg>_data`` -- driven by the sender;
* ``<msg>_valid`` -- sender's handshake bit;
* ``<msg>_ack``  -- receiver's handshake bit.

The compiler omits a handshake port whenever the corresponding side's sync
mode is static or dependent (the timing is then statically known and no
run-time synchronization is needed), exactly as the paper describes: both
ports exist only for fully-dynamic messages.
"""

from __future__ import annotations

from typing import List, NamedTuple

from ..lang.channels import ChannelDef, MessageDef, Side


class PortSpec(NamedTuple):
    name: str
    width: int
    direction: str  # "input" | "output", from the perspective of `side`
    role: str       # "data" | "valid" | "ack"
    message: str


def message_ports(endpoint: str, msg: MessageDef, side: Side) -> List[PortSpec]:
    """Ports generated for ``msg`` on an endpoint occupying ``side``."""
    sender = msg.sender_side() is side
    ports: List[PortSpec] = []
    prefix = f"{endpoint}_{msg.name}"
    ports.append(
        PortSpec(
            f"{prefix}_data",
            msg.dtype.width,
            "output" if sender else "input",
            "data",
            msg.name,
        )
    )
    sender_mode = msg.sync_of(msg.sender_side())
    receiver_mode = msg.sync_of(msg.sender_side().other)
    if sender_mode.is_dynamic:
        ports.append(
            PortSpec(
                f"{prefix}_valid",
                1,
                "output" if sender else "input",
                "valid",
                msg.name,
            )
        )
    if receiver_mode.is_dynamic:
        ports.append(
            PortSpec(
                f"{prefix}_ack",
                1,
                "input" if sender else "output",
                "ack",
                msg.name,
            )
        )
    return ports


def endpoint_ports(endpoint: str, channel: ChannelDef, side: Side
                   ) -> List[PortSpec]:
    out: List[PortSpec] = []
    for msg in channel:
        out.extend(message_ports(endpoint, msg, side))
    return out
