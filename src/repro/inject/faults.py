"""Seeded fault models and the per-cycle injection hook.

A :class:`Fault` names *where* (``module`` + ``target``), *when*
(``cycle``, plus ``duration`` for stuck-at models) and *how* (``kind``,
``bit``, ``width``) state gets corrupted.  Two target families exist:

* **wire targets** -- the full (or module-local) name of a tracked
  :class:`~repro.rtl.signal.Wire`.  The corruption lands *after* the
  cycle's settle and *before* the activity commit, via
  :meth:`~repro.rtl.scheduler.CombScheduler.poke`, so toggle accounting
  stays bit-identical across all three engines and the wire's driver
  recomputes a clean value on the next settle -- exactly a single-cycle
  transient upset on a net.
* **state targets** -- a plain-data module attribute path
  (``"zf"``, ``"registers[3]"``, ``"E[vala]"``, ``"memory[8]"``),
  corrupted at the same hook point: after this cycle's settle (wires
  stay clean) but before ``tick`` consumes it -- an upset in a
  register/latch/memory cell.

The :class:`FaultInjector` is the hook object armed on
``Simulator._inject_hook``; while armed the compiled cycle-kernel fast
path stands down (the hook must see every cycle), and the injector
disarms itself after the last cycle of its window so the fast path
re-arms for the tail.
"""

from __future__ import annotations

import re
from dataclasses import asdict, dataclass
from typing import Callable, List, Optional, Sequence

from ..errors import SimulationError

#: the supported corruption models, in documentation order
FAULT_KINDS = ("transient_bitflip", "stuck_at_0", "stuck_at_1", "burst")

_ATTR_PATH = re.compile(r"^([A-Za-z_]\w*)(?:\[(\w+)\])?$")


@dataclass(frozen=True)
class Fault:
    """One injection: corrupt ``module.target`` at ``cycle``.

    ``bit`` is the least-significant corrupted bit; ``width`` is the
    number of contiguous bits the model touches (1 for a single-event
    upset, >1 for a multi-bit burst or a multi-bit stuck-at);
    ``duration`` is how many consecutive cycles the corruption is
    re-asserted (1 for transients, >=1 for stuck-at models, where the
    driver's recomputed value is re-overridden every cycle of the
    window)."""

    kind: str
    module: str
    target: str
    cycle: int
    bit: int = 0
    width: int = 1
    duration: int = 1

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (one of {FAULT_KINDS})"
            )
        if self.cycle < 0 or self.bit < 0 or self.width < 1 \
                or self.duration < 1:
            raise ValueError(
                f"invalid fault geometry: cycle={self.cycle} "
                f"bit={self.bit} width={self.width} "
                f"duration={self.duration}"
            )

    @property
    def site(self) -> str:
        """The vulnerability-table key: where this fault lands."""
        return f"{self.module}.{self.target}"

    def mutate(self, value: int) -> int:
        """Apply this fault's corruption to ``value`` (unmasked; the
        write path masks to the target's width)."""
        bits = ((1 << self.width) - 1) << self.bit
        if self.kind == "transient_bitflip" or self.kind == "burst":
            return value ^ bits
        if self.kind == "stuck_at_0":
            return value & ~bits
        return value | bits

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Fault":
        return cls(**data)


@dataclass(frozen=True)
class Site:
    """One injectable location, discovered by :func:`enumerate_sites`."""

    module: str
    target: str
    width: int
    family: str   # "wire" or "state"


class _Target:
    """Resolved read/write access to a fault's location."""

    __slots__ = ("read", "write")

    def __init__(self, read: Callable[[], int], write: Callable[[int], None]):
        self.read = read
        self.write = write


def _find_module(sim, name: str):
    for m in sim.modules:
        if getattr(m, "name", None) == name:
            return m
    known = sorted({m.name for m in sim.modules if hasattr(m, "name")})
    raise SimulationError(
        f"fault injection: no module named {name!r} in {sim.name!r} "
        f"(modules: {', '.join(known)})"
    )


def resolve_target(sim, fault: Fault) -> _Target:
    """Bind a fault to its wire or state location inside ``sim``.

    Wire targets match the full wire name first, then the suffix after
    the owning module's dotted prefix; state targets follow the
    ``attr`` / ``attr[index]`` / ``attr[key]`` grammar over the
    module's plain-data attributes."""
    module = _find_module(sim, fault.module)
    for w in module.wires():
        if w.name == fault.target or \
                w.name.rsplit(".", 1)[-1] == fault.target:
            wire = w
            return _Target(
                lambda: wire.value,
                lambda v: sim.scheduler.poke(wire, v),
            )
    m = _ATTR_PATH.match(fault.target)
    attr, sub = (m.group(1), m.group(2)) if m else (None, None)
    holder = getattr(module, attr, None) if attr else None
    if holder is not None:
        if sub is None and isinstance(holder, int):
            return _Target(
                lambda: getattr(module, attr),
                lambda v: setattr(module, attr, v),
            )
        if sub is not None and isinstance(holder, (list, bytearray)):
            idx = int(sub)
            if 0 <= idx < len(holder):
                mask = 0xFF if isinstance(holder, bytearray) else None
                return _Target(
                    lambda: holder[idx],
                    lambda v: holder.__setitem__(
                        idx, v & mask if mask is not None else v),
                )
        if sub is not None and isinstance(holder, dict) and sub in holder:
            return _Target(
                lambda: holder[sub],
                lambda v: holder.__setitem__(sub, v),
            )
    raise SimulationError(
        f"fault injection: {fault.module!r} has no wire or state "
        f"target {fault.target!r}"
    )


class FaultInjector:
    """The armed hook: applies ``fault`` during its cycle window.

    Arm it on a simulator positioned at or before the fault cycle; the
    hook fires after every settle, checks the window
    ``[cycle, cycle + duration)``, corrupts the target inside it and
    disarms itself after the window's last cycle."""

    def __init__(self, fault: Fault):
        self.fault = fault
        self.fired = 0
        self._target: Optional[_Target] = None
        self._sim = None

    def arm(self, sim) -> "FaultInjector":
        if sim._inject_hook is not None:
            raise SimulationError(
                f"simulator {sim.name!r} already has an injection hook "
                f"armed; disarm it before arming another fault"
            )
        if sim.cycle > self.fault.cycle:
            raise SimulationError(
                f"cannot arm a fault at cycle {self.fault.cycle} on "
                f"{sim.name!r}: the simulator is already at cycle "
                f"{sim.cycle}"
            )
        self._target = resolve_target(sim, self.fault)
        self._sim = sim
        sim._inject_hook = self
        return self

    def disarm(self) -> None:
        sim = self._sim
        if sim is not None and sim._inject_hook is self:
            sim._inject_hook = None
        self._sim = None

    def __call__(self, sim) -> None:
        fault = self.fault
        cycle = sim.cycle
        if cycle < fault.cycle:
            return
        last = fault.cycle + fault.duration - 1
        if cycle > last:
            self.disarm()
            return
        target = self._target
        target.write(fault.mutate(target.read()))
        self.fired += 1
        if cycle >= last:
            self.disarm()


def run_with_fault(sim, fault: Fault, cycles: int) -> int:
    """Advance ``sim`` by ``cycles`` with ``fault`` injected.

    The prefix before the fault cycle runs unhooked (kernel fast path
    intact), the injection window steps interpreted, and the tail
    re-arms the fast path once the injector self-disarms.  Returns how
    many cycles the fault actually fired (0 if the window fell outside
    the run)."""
    end = sim.cycle + cycles
    injector = FaultInjector(fault)
    if sim.cycle <= fault.cycle < end:
        if fault.cycle > sim.cycle:
            sim.run(fault.cycle - sim.cycle)
        injector.arm(sim)
    if end > sim.cycle:
        sim.run(end - sim.cycle)
    injector.disarm()
    return injector.fired


def enumerate_sites(sim, include_state: bool = True) -> List[Site]:
    """Deterministically enumerate every injectable site in ``sim``.

    Wires are listed per owning module (first tracker wins, matching
    the scheduler's activity attribution) under their full names; with
    ``include_state``, plain integer attributes plus integer list and
    string-keyed integer dict entries follow (pipeline latches,
    register files, flags).  Bulk ``bytearray`` memories are skipped --
    a memory-array AVF sweep would drown the logic sites a campaign is
    after; target them explicitly via ``"memory[addr]"`` instead."""
    sites: List[Site] = []
    seen_wires = set()
    for m in sim.modules:
        name = getattr(m, "name", None)
        if not name:
            continue
        for w in m.wires():
            if id(w) in seen_wires:
                continue
            seen_wires.add(id(w))
            sites.append(Site(name, w.name, w.width, "wire"))
        if not include_state:
            continue
        for attr in sorted(vars(m)):
            if attr.startswith("_") or attr in ("name",):
                continue
            value = vars(m)[attr]
            if isinstance(value, bool):
                continue
            if isinstance(value, int):
                sites.append(Site(name, attr, 64, "state"))
            elif isinstance(value, list) and value and all(
                    isinstance(x, int) and not isinstance(x, bool)
                    for x in value):
                sites.extend(
                    Site(name, f"{attr}[{i}]", 64, "state")
                    for i in range(len(value))
                )
            elif isinstance(value, dict) and value and all(
                    isinstance(k, str) and k.isidentifier()
                    for k in value) and all(
                    isinstance(x, int) and not isinstance(x, bool)
                    for x in value.values()):
                sites.extend(
                    Site(name, f"{attr}[{k}]", 64, "state")
                    for k in sorted(value)
                )
    return sites


def sample_faults(sites: Sequence[Site], count: int, rng,
                  max_cycle: int,
                  kinds: Sequence[str] = FAULT_KINDS) -> List[Fault]:
    """Draw ``count`` faults over ``sites`` x ``[0, max_cycle)`` from a
    seeded ``random.Random`` -- the campaign's sampling plan.  Every
    draw consumes a fixed number of RNG values, so the plan is a pure
    function of (sites, count, seed, max_cycle)."""
    if not sites:
        raise SimulationError("fault injection: no injectable sites")
    if max_cycle < 1:
        raise SimulationError(
            f"fault injection: golden run finished in {max_cycle} "
            f"cycles; nothing to inject into"
        )
    faults = []
    for _ in range(count):
        site = sites[rng.randrange(len(sites))]
        kind = kinds[rng.randrange(len(kinds))]
        bit = rng.randrange(site.width)
        raw_width = rng.randrange(2, 5)
        raw_duration = rng.randrange(1, 5)
        width = 1
        if kind == "burst" or kind.startswith("stuck_at"):
            width = max(1, min(raw_width, site.width - bit))
        duration = raw_duration if kind.startswith("stuck_at") else 1
        faults.append(Fault(
            kind=kind, module=site.module, target=site.target,
            cycle=rng.randrange(max_cycle), bit=bit, width=width,
            duration=duration,
        ))
    return faults
