"""Deterministic fault injection for the RTL simulator.

Seeded fault models (:mod:`repro.inject.faults`) corrupt a named
``(module, wire)`` or a named piece of architectural state at cycle *k*
by hooking the simulator between settle and the activity commit, on any
of the three engines.  The campaign driver (:mod:`repro.inject.campaign`)
samples N faults, forks every injection from a warm
:class:`~repro.rtl.snapshot.CheckpointStore` snapshot of its prefix,
runs each tail under a cycle-budget watchdog and classifies the outcome
against the uninjected golden run (masked / sdc / detected / hang),
aggregating an AVF-style per-site vulnerability table.
"""

from .campaign import OUTCOMES, plan_faults, run_campaign
from .faults import (
    FAULT_KINDS,
    Fault,
    FaultInjector,
    enumerate_sites,
    run_with_fault,
    sample_faults,
)

__all__ = [
    "FAULT_KINDS",
    "Fault",
    "FaultInjector",
    "OUTCOMES",
    "enumerate_sites",
    "plan_faults",
    "run_campaign",
    "run_with_fault",
    "sample_faults",
]
