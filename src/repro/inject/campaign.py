"""Fault-injection campaigns: fork-from-snapshot sweeps + AVF readout.

A campaign asks "what happens when a bit flips?" N times against one
scenario and classifies every answer against the uninjected golden run:

* **masked** -- the architectural final state is bit-identical;
* **sdc** -- silent data corruption: state differs, nothing fired;
* **detected** -- the machine noticed: the Y86 ``stat`` left its golden
  value (halt with SADR/SINS/...) or an Anvil safety contract raised;
* **hang** -- the tail exceeded its cycle budget (or tripped the
  optional ``max_wall_time`` wall-clock watchdog) without halting.

The driver never re-simulates a prefix: it walks one simulator forward
through the distinct injection cycles, captures a
:class:`~repro.rtl.snapshot.Snapshot` at each into a campaign-local
:class:`~repro.rtl.snapshot.CheckpointStore`, then forks every
injection sharing that prefix from the warm snapshot (restore is
in-place and bit-exact, so one tail simulator serves the whole sweep).

Campaigns shard: the ``inject_campaign`` :class:`~repro.rtl.executors.
JobSpec` kind runs an explicit fault list in a worker, and
``Session.inject_campaign`` splits a sampled plan across the process
executor and re-aggregates -- same outcomes, any executor.
"""

from __future__ import annotations

import hashlib
import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import AnvilError, SimulationError, WatchdogTimeout
from ..rtl.executors import job_kind
from ..rtl.simulator import run_guarded
from ..rtl.snapshot import (
    CheckpointStore,
    capture,
    prefix_key,
    restore,
    state_sig,
)
from .faults import Fault, FaultInjector, enumerate_sites, sample_faults

#: outcome taxonomy, in histogram order
OUTCOMES = ("masked", "sdc", "detected", "hang")

#: tail-run slice between halt checks; fixed so campaign cycle counts
#: are reproducible across engines and executors
_TAIL_CHUNK = 32


def _halt_module(sim):
    """The architectural reference point: the first module exposing a
    ``halted`` flag plus an ``arch_state()`` fingerprint (the Y86
    pipeline CPU).  ``None`` means a fixed-cycle scenario, classified
    on whole-simulator state instead."""
    for m in sim.modules:
        if hasattr(m, "halted") and hasattr(m, "arch_state"):
            return m
    return None


def _arch_digest(state) -> str:
    """Stable digest of an architectural state (registers, flags, pc,
    stat, instret, memory) -- engine- and backend-independent."""
    h = hashlib.sha256()
    h.update(",".join(map(str, state.registers)).encode())
    h.update(
        f"|{state.zf}{state.sf}{state.of}|{state.pc}|{state.stat}|"
        f"{state.instret}|".encode()
    )
    h.update(bytes(state.memory))
    return h.hexdigest()[:16]


def _golden_pass(sim, cpu, cfg) -> Dict[str, object]:
    """Run the uninjected reference and fingerprint its final state."""
    if cpu is None:
        run_guarded(sim, cfg.cycles, cfg.max_wall_time)
        return {"cycles": cfg.cycles, "stat": None,
                "digest": state_sig(sim)[:16]}
    sim.run_until(lambda: cpu.halted, limit=cfg.cycles)
    return {"cycles": sim.cycle, "stat": cpu.stat,
            "digest": _arch_digest(cpu.arch_state())}


def _run_tail(sim, cpu, golden: Dict[str, object], budget: int,
              max_wall_time: Optional[float]) -> None:
    """Advance an injected fork to its classification point: halt or
    the absolute cycle ``budget`` for CPU scenarios, the golden cycle
    count for fixed-cycle ones -- under the optional wall-clock
    watchdog."""
    deadline = None
    if max_wall_time:
        deadline = time.monotonic() + max_wall_time
    if cpu is None:
        end = int(golden["cycles"])
        if end > sim.cycle:
            run_guarded(sim, end - sim.cycle, deadline=deadline)
        return
    while not cpu.halted and sim.cycle < budget:
        sim.run(min(_TAIL_CHUNK, budget - sim.cycle))
        if deadline is not None and not cpu.halted \
                and sim.cycle < budget and time.monotonic() > deadline:
            raise WatchdogTimeout(
                f"fault tail on {sim.name!r} exceeded its "
                f"{max_wall_time:g}s wall-clock budget at cycle "
                f"{sim.cycle} (cycle budget {budget})"
            )


def _classify(sim, cpu, golden: Dict[str, object],
              error: Optional[BaseException]
              ) -> Tuple[str, Optional[str]]:
    if isinstance(error, WatchdogTimeout):
        return "hang", None
    if error is not None:
        return "detected", None
    if cpu is not None:
        if not cpu.halted:
            return "hang", None
        digest = _arch_digest(cpu.arch_state())
        if cpu.stat != golden["stat"]:
            return "detected", digest
        return ("masked" if digest == golden["digest"] else "sdc",
                digest)
    digest = state_sig(sim)[:16]
    return ("masked" if digest == golden["digest"] else "sdc", digest)


def aggregate(outcomes: Sequence[dict]
              ) -> Tuple[Dict[str, int], Dict[str, dict]]:
    """Fold outcome records into the classification histogram and the
    per-site AVF-style vulnerability table (vulnerability = fraction of
    that site's faults that were *not* masked)."""
    hist = dict.fromkeys(OUTCOMES, 0)
    rows: Dict[str, Dict[str, int]] = {}
    for rec in outcomes:
        hist[rec["outcome"]] += 1
        row = rows.setdefault(rec["site"], dict.fromkeys(OUTCOMES, 0))
        row[rec["outcome"]] += 1
    table = {}
    for site in sorted(rows):
        row = rows[site]
        total = sum(row.values())
        table[site] = dict(row, faults=total, vulnerability=round(
            1.0 - row["masked"] / total, 4))
    return hist, table


def assemble_result(scenario: str, cfg, inject_seed: int,
                    faults: Sequence[Fault], budget: int,
                    golden: Dict[str, object], outcomes: List[dict],
                    elapsed: float) -> Dict[str, object]:
    """The campaign's pinned result shape.  Everything except
    ``elapsed`` and ``config`` is a pure function of (scenario, config
    determinism axes, faults) -- the byte-identity tests compare the
    rest verbatim."""
    hist, table = aggregate(outcomes)
    return {
        "scenario": scenario,
        "faults": len(faults),
        "inject_seed": inject_seed,
        "tail_budget": budget,
        "golden": golden,
        "histogram": hist,
        "table": table,
        "outcomes": outcomes,
        "config": cfg.to_dict(),
        "elapsed": round(elapsed, 6),
    }


def plan_faults(scenario: str, config=None, n_faults: int = 25,
                inject_seed: Optional[int] = None,
                include_state: bool = True,
                **overrides) -> Tuple[Dict[str, object], List[Fault]]:
    """Golden pass + seeded sampling plan, without running any tails.

    Returns ``(golden, faults)``.  ``Session.inject_campaign`` uses
    this to sample once in the parent and shard the explicit fault list
    across executor workers."""
    from ..api import get_registry, resolve_config

    cfg = resolve_config(config, **overrides)
    seed = cfg.seed if inject_seed is None else inject_seed
    sim = get_registry().build(scenario, cfg)
    cpu = _halt_module(sim)
    golden = _golden_pass(sim, cpu, cfg)
    sites = enumerate_sites(sim, include_state=include_state)
    rng = random.Random(seed)
    faults = sample_faults(sites, n_faults, rng, int(golden["cycles"]))
    return golden, faults


def default_budget(golden_cycles: int) -> int:
    """The default tail cycle budget: enough slack for stalls and
    recovery, small enough that runaway loops classify quickly."""
    return 2 * golden_cycles + 64


def run_campaign(scenario: str, config=None, *, n_faults: int = 25,
                 faults: Optional[Sequence] = None,
                 inject_seed: Optional[int] = None,
                 tail_budget: Optional[int] = None,
                 include_state: bool = True,
                 **overrides) -> Dict[str, object]:
    """Run one fault-injection campaign serially and return the result
    dict (see :func:`assemble_result`).

    With ``faults`` omitted, ``n_faults`` are sampled from
    ``random.Random(inject_seed or config.seed)`` over every injectable
    site x the golden run's cycle span.  An explicit ``faults``
    sequence (:class:`~repro.inject.faults.Fault` objects or their
    ``to_dict`` forms) runs exactly those -- the sharded path and the
    pinned classification tests use this."""
    from ..api import resolve_config

    cfg = resolve_config(config, **overrides)
    seed = cfg.seed if inject_seed is None else inject_seed
    start = time.perf_counter()

    if faults is None:
        golden, plan = plan_faults(
            scenario, cfg, n_faults=n_faults, inject_seed=seed,
            include_state=include_state)
    else:
        from ..api import get_registry

        sim = get_registry().build(scenario, cfg)
        golden = _golden_pass(sim, _halt_module(sim), cfg)
        plan = [f if isinstance(f, Fault) else Fault.from_dict(dict(f))
                for f in faults]
    if not plan:
        raise SimulationError("fault injection: empty fault list")

    budget = tail_budget if tail_budget else default_budget(
        int(golden["cycles"]))
    budget = max(budget, max(f.cycle for f in plan) + 1)

    # prefix pass: walk one simulator forward through the distinct
    # injection cycles, snapshotting each boundary once
    from ..api import get_registry

    walker = get_registry().build(scenario, cfg)
    key = prefix_key(scenario, cfg, walker)
    cycles_needed = sorted({f.cycle for f in plan})
    store = CheckpointStore(capacity=len(cycles_needed))
    for cycle in cycles_needed:
        if cycle > walker.cycle:
            run_guarded(walker, cycle - walker.cycle, cfg.max_wall_time)
        store.put(key, cycle, capture(walker, scenario=scenario, key=key))

    # injection pass: fork every fault from its warm prefix snapshot
    cpu = _halt_module(walker)
    outcomes: List[dict] = []
    for index, fault in enumerate(plan):
        _cycle, snap = store.best(key, fault.cycle)
        restore(walker, snap)
        injector = FaultInjector(fault).arm(walker)
        error: Optional[BaseException] = None
        try:
            _run_tail(walker, cpu, golden, budget, cfg.max_wall_time)
        except AnvilError as exc:   # includes WatchdogTimeout
            error = exc
        finally:
            injector.disarm()
        outcome, digest = _classify(walker, cpu, golden, error)
        record = dict(fault.to_dict())
        record.update(
            index=index, site=fault.site, outcome=outcome,
            fired=injector.fired, end_cycle=walker.cycle, digest=digest,
        )
        if error is not None and not isinstance(error, WatchdogTimeout):
            record["error"] = f"{type(error).__name__}: {error}"
        outcomes.append(record)

    return assemble_result(scenario, cfg, seed, plan, budget, golden,
                           outcomes, time.perf_counter() - start)


@job_kind("inject_campaign")
def _inject_campaign_job(spec) -> Dict[str, object]:
    """Executor entry point: one campaign shard in a worker process.

    ``faults`` arrives as a tuple of ``Fault.to_dict`` forms (JobSpecs
    must stay picklable and comparable); an empty tuple means "sample
    ``n_faults`` locally", which keeps single-shard submissions cheap."""
    shard = [Fault.from_dict(dict(d)) for d in spec.param("faults", ())]
    return run_campaign(
        spec.scenario, spec.config,
        n_faults=spec.param("n_faults", 25),
        faults=shard or None,
        inject_seed=spec.param("inject_seed"),
        tail_budget=spec.param("tail_budget"),
    )
