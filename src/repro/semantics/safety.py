"""The Definition C.15 safety condition over concrete execution logs.

A log is safe iff for every value there is a contiguous window covering
its creation and all its uses (including the windows promised to message
sends), contained in the availability window granted by receives, during
which none of the registers the value depends on changes.
"""

from __future__ import annotations

from typing import List

from .log import ExecutionLog


def check_log(log: ExecutionLog) -> List[str]:
    """Return the list of safety violations (empty = safe)."""
    violations: List[str] = []

    for w in log.windows:
        # 1. availability: the use window must fall inside the value's
        #    guaranteed-live window
        if w.avail_end is not None:
            if w.use_end is None:
                violations.append(
                    f"{w.context}: unbounded use of a value that dies at "
                    f"cycle {w.avail_end}"
                )
            elif w.use_end > w.avail_end:
                violations.append(
                    f"{w.context}: used until {w.use_end} but only live "
                    f"until {w.avail_end}"
                )
        # 2. register stability from creation through the last use
        last_use = (w.use_end - 1) if w.use_end is not None else None
        for reg, read_cycle in w.regs.items():
            for mreg, mcycle, mctx in log.mutations:
                if mreg != reg:
                    continue
                if last_use is None:
                    if mcycle >= read_cycle:
                        violations.append(
                            f"{w.context}: {reg} mutated at {mcycle} "
                            f"({mctx}) during an unbounded use"
                        )
                    continue
                # the mutation lands at mcycle+1; it clobbers the value
                # iff a use happens at or after that
                if read_cycle <= mcycle and mcycle + 1 <= last_use:
                    violations.append(
                        f"{w.context}: {reg} read at {read_cycle}, used "
                        f"until {last_use}, but mutated at {mcycle} ({mctx})"
                    )

    # 3. required send windows of one message must not overlap
    by_message = {}
    for s in log.sends:
        by_message.setdefault(s.message, []).append(s)
    for message, sends in by_message.items():
        sends.sort(key=lambda s: s.start)
        for first, second in zip(sends, sends[1:]):
            first_end = first.end
            if first_end is None or first_end > second.start:
                violations.append(
                    f"{first.context} / {second.context}: send windows of "
                    f"{message} overlap ([{first.start},{first_end}) vs "
                    f"start {second.start})"
                )
    return violations


def log_is_safe(log: ExecutionLog) -> bool:
    return not check_log(log)
