"""Execution-log semantics (Appendix C) and the dynamic safety oracle."""

from .log import (
    ConcreteSend,
    ConcreteWindow,
    ExecutionLog,
    concrete_times,
    sample_log,
    sample_process_logs,
)
from .safety import check_log, log_is_safe

__all__ = [
    "ConcreteSend", "ConcreteWindow", "ExecutionLog", "concrete_times",
    "sample_log", "sample_process_logs", "check_log", "log_is_safe",
]
