"""Execution logs (Definition C.1) sampled from event graphs.

A *timestamp sample* fixes a concrete handshake slack for every dynamic
synchronization event and an outcome for every branch; the event graph
then maps deterministically to concrete cycles, and the thread's check
obligations map to concrete operations:

* ``ValCreate``/``ValUse`` from use obligations,
* ``RegMut`` from mutations,
* ``ValSend``/``ValRecv`` from message synchronizations.

Sampling many logs and checking each against the Definition C.15 safety
condition gives a *dynamic oracle* for the type system: a well-typed
process must produce only safe logs (Theorem C.20), an ill-typed one
should exhibit unsafe logs under some sample.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..core.events import EventKind
from ..core.graph_builder import BuildResult, GraphBuilder
from ..core.patterns import EndSet
from ..lang.process import Process


class ConcreteWindow:
    """A value's concrete life: creation, uses, deps, availability."""

    __slots__ = ("name", "creation", "use_start", "use_end", "regs",
                 "avail_end", "context")

    def __init__(self, name, creation, use_start, use_end, regs, avail_end,
                 context):
        self.name = name
        self.creation = creation
        self.use_start = use_start
        self.use_end = use_end          # exclusive; None = unbounded
        self.regs = regs                # {reg: read_cycle}
        self.avail_end = avail_end      # exclusive; None = eternal
        self.context = context

    def __repr__(self):
        return (f"Window({self.context}: create@{self.creation}, "
                f"use [{self.use_start},{self.use_end}))")


class ConcreteSend:
    __slots__ = ("message", "start", "end", "context")

    def __init__(self, message, start, end, context):
        self.message = message
        self.start = start
        self.end = end
        self.context = context


class ExecutionLog:
    """One concrete execution: windows, mutations, sends."""

    def __init__(self, slacks, branches):
        self.slacks = slacks
        self.branches = branches
        self.windows: List[ConcreteWindow] = []
        self.mutations: List[Tuple[str, int, str]] = []  # (reg, cycle, ctx)
        self.sends: List[ConcreteSend] = []

    def __repr__(self):
        return (f"ExecutionLog({len(self.windows)} windows, "
                f"{len(self.mutations)} mutations)")


def concrete_times(result: BuildResult, slacks: Dict[int, int],
                   branches: Dict[int, bool]) -> List[Optional[int]]:
    """Concrete fire cycle per event (None = unreached)."""
    g = result.graph
    times: List[Optional[int]] = []
    for ev in g.events:
        preds = [times[p] for p in ev.preds]
        if ev.kind is EventKind.ROOT:
            t: Optional[int] = 0
        elif any(p is None for p in preds) and \
                ev.kind is not EventKind.JOIN_ANY:
            t = None
        elif ev.kind is EventKind.DELAY:
            t = max(preds) + ev.delay
        elif ev.kind is EventKind.SYNC:
            base = max(preds)
            # serialized with earlier syncs of the same message
            for other in g.sync_events(ev.endpoint, ev.message):
                if other.eid < ev.eid and times[other.eid] is not None:
                    base = max(base, times[other.eid])
            slack = (
                ev.static_slack if ev.static_slack is not None
                else slacks.get(ev.eid, 0)
            )
            t = base + slack
        elif ev.kind is EventKind.BRANCH:
            taken = branches.get(ev.cond_id, True) == ev.polarity
            t = preds[0] if taken else None
        elif ev.kind is EventKind.JOIN_ANY:
            reached = [p for p in preds if p is not None]
            t = min(reached) if reached else None
        else:  # JOIN_ALL
            t = max(preds)
        times.append(t)
    return times


def _end_time(end: EndSet, times, result: BuildResult) -> Optional[int]:
    """Concrete earliest satisfaction of an end set (None = never)."""
    if end.is_eternal:
        return None
    best: Optional[int] = None
    for p in end.patterns:
        base = times[p.base]
        if base is None:
            continue
        if p.duration.is_static:
            cand: Optional[int] = base + p.duration.cycles
        else:
            # the next occurrence *in program order*: a structural
            # descendant of the base event (it may land in the same
            # cycle), or an order-incomparable sync that happens later --
            # the same convention the static oracle uses
            g = result.graph
            cand = None
            for s in result.graph.sync_events(
                p.duration.endpoint, p.duration.message
            ):
                t = times[s.eid]
                if t is None or s.eid == p.base:
                    continue
                if g.is_ancestor(s.eid, p.base):
                    continue  # before the base event
                if not g.is_ancestor(p.base, s.eid) and t <= base:
                    continue  # incomparable and not after
                cand = t if cand is None else min(cand, t)
        if cand is not None:
            best = cand if best is None else min(best, cand)
    return best


def sample_log(result: BuildResult, rng: random.Random,
               max_slack: int = 3) -> ExecutionLog:
    """Sample one execution log from a built thread."""
    slacks = {
        ev.eid: rng.randint(0, max_slack)
        for ev in result.graph.events
        if ev.kind is EventKind.SYNC and ev.static_slack is None
    }
    conds = set()
    for ev in result.graph.events:
        if ev.kind is EventKind.BRANCH:
            conds.add(ev.cond_id)
    branches = {c: rng.random() < 0.5 for c in conds}
    times = concrete_times(result, slacks, branches)
    log = ExecutionLog(slacks, branches)

    for use in result.uses:
        v = use.value
        creation = times[v.start]
        use_start = times[use.window_start]
        if creation is None or use_start is None:
            continue  # this use never happens in the sampled run
        use_end = _end_time(use.window_end, times, result)
        avail_end = _end_time(v.end, times, result)
        regs = {}
        for reg, read_at in v.reg_reads:
            t = times[read_at]
            if t is not None:
                regs[reg] = t
        log.windows.append(ConcreteWindow(
            id(v), creation, use_start, use_end, regs, avail_end,
            use.context,
        ))
    for mut in result.mutations:
        t = times[mut.at]
        if t is not None:
            log.mutations.append((mut.register, t, mut.context))
    for send in result.sends:
        t = times[send.sync]
        if t is None:
            continue
        end = _end_time(send.required_end, times, result)
        log.sends.append(ConcreteSend(
            (send.endpoint, send.message), t, end, send.context,
        ))
    return log


def sample_process_logs(process: Process, samples: int = 20,
                        iterations: int = 2, seed: int = 0,
                        max_slack: int = 3) -> List[ExecutionLog]:
    """Sample execution logs for every thread of a process."""
    rng = random.Random(seed)
    logs: List[ExecutionLog] = []
    for thread in process.threads:
        result = GraphBuilder(process, thread).build(iterations)
        for _ in range(samples):
            logs.append(sample_log(result, rng, max_slack))
    return logs
