"""repro -- a Python reproduction of *Anvil: A General-Purpose Timing-Safe
Hardware Description Language* (ASPLOS 2026).

The package implements the complete system described in the paper:

* :mod:`repro.lang` -- the Anvil language: channels with timing contracts,
  processes, threads and the term DSL (``send``/``recv``/``cycle``/``let``/
  the wait operator ``>>``).
* :mod:`repro.core` -- the event-graph IR and the type system that
  statically guarantees timing safety (lifetimes, loan times, the
  ``<=G`` oracle, optimization passes).
* :mod:`repro.codegen` -- FSM lowering, an executable FSM interpreter and
  SystemVerilog emission.
* :mod:`repro.rtl` -- a two-phase cycle-based RTL simulator substrate.
* :mod:`repro.designs` / :mod:`repro.anvil_designs` -- the paper's ten
  evaluation designs as hand-written RTL baselines and as Anvil programs.
* :mod:`repro.bsv`, :mod:`repro.verif`, :mod:`repro.semantics`,
  :mod:`repro.synth` -- the comparison substrates (rule scheduling, bounded
  model checking, execution-log semantics, synthesis cost model).
* :mod:`repro.harness` -- regenerates every table and figure of the paper.
* :mod:`repro.api` -- the unified run-time surface: one validated
  :class:`~repro.api.SimConfig`, a :class:`~repro.api.Session` that
  builds/runs/sweeps registered scenarios, and the scenario registry
  behind the ``python -m repro`` CLI (:mod:`repro.__main__`).

Quickstart::

    from repro import *

    ch = simple_channel("mem_ch")
    top = Process("top")
    top.endpoint("mem", ch, Side.LEFT)
    top.register("addr", Logic(8))
    top.loop(
        send("mem", "req", read("addr"))
        >> let("d", recv("mem", "res"),
               var("d") >> set_reg("addr", read("addr") + 1))
    )
    assert_safe(top)            # static timing-safety check
    print(to_systemverilog(top))

Running the bundled workloads::

    from repro import Session, SimConfig

    session = Session(SimConfig(backend="pycompiled"))
    print(session.run("anvil_aes", cycles=500).total_activity)
"""

from .errors import (
    AnvilError,
    ContractViolationError,
    ElaborationError,
    LoanedRegisterMutationError,
    MessageSendError,
    ParseError,
    SimulationError,
    TypeCheckError,
    ValueNotLiveError,
)
from .lang.channels import (
    ChannelDef,
    DependentSync,
    DynamicSync,
    LifetimeSpec,
    MessageDef,
    Side,
    StaticSync,
    simple_channel,
)
from .lang.process import Process, System, Thread
from .lang.terms import (
    Term,
    bundle,
    cycle,
    dprint,
    if_,
    let,
    lit,
    mux,
    par,
    read,
    ready,
    recurse,
    recv,
    send,
    seq,
    set_reg,
    unit,
    var,
)
from .lang.types import BIT, Bundle, DataType, Logic
from .core.typecheck import CheckReport, assert_safe, check_process
from .core.graph_builder import build_thread
from .core.optimize import optimize
from .codegen.simfsm import (
    AnvilProcessModule,
    ExternalEndpoint,
    build_simulation,
    compile_process,
)
from .codegen.sysverilog import emit_process as to_systemverilog
from .codegen.sysverilog import emit_system
from .lang.parser import parse, parse_process
from .rtl.simulator import Simulator
from .rtl.scheduler import CombScheduler   # kept importable, not in __all__
from .rtl.batch import BatchSimulator, run_batch
from .rtl.module import Module
from .rtl.signal import Wire               # kept importable, not in __all__
from .api import (
    RunResult,
    Scenario,
    ScenarioRegistry,
    Session,
    SimConfig,
    UnknownScenarioError,
    get_registry,
    list_scenarios,
    resolve_config,
)

__version__ = "1.0.0"

__all__ = [
    "AnvilError", "ContractViolationError", "ElaborationError",
    "LoanedRegisterMutationError", "MessageSendError", "ParseError",
    "SimulationError", "TypeCheckError", "ValueNotLiveError",
    "ChannelDef", "DependentSync", "DynamicSync", "LifetimeSpec",
    "MessageDef", "Side", "StaticSync", "simple_channel",
    "Process", "System", "Thread",
    "Term", "bundle", "cycle", "dprint", "if_", "let", "lit", "mux", "par",
    "read", "ready", "recurse", "recv", "send", "seq", "set_reg", "unit",
    "var",
    "BIT", "Bundle", "DataType", "Logic",
    "CheckReport", "assert_safe", "check_process", "build_thread",
    "optimize",
    "AnvilProcessModule", "build_simulation",
    "compile_process", "to_systemverilog", "emit_system",
    "parse", "parse_process",
    "Simulator", "BatchSimulator", "run_batch", "Module",
    # the unified run-time API (repro.api)
    "SimConfig", "Session", "RunResult",
    "Scenario", "ScenarioRegistry", "UnknownScenarioError",
    "get_registry", "list_scenarios", "resolve_config",
    "__version__",
]
