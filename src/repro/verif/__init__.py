"""Verification substrate: explicit-state bounded model checking.

The Appendix A comparison: assertion-based verification detects timing
hazards only *after the fact* and struggles with state explosion, whereas
Anvil's type checker rejects the design instantly and modularly.
"""

from .bmc import (
    Assertion,
    BmcResult,
    BoundedModelChecker,
    TransitionSystem,
)

__all__ = [
    "Assertion", "BmcResult", "BoundedModelChecker", "TransitionSystem",
]
