"""Explicit-state bounded model checker.

Checks safety assertions over a :class:`TransitionSystem` by breadth-first
exploration up to a depth bound, subject to state and time budgets.  Free
inputs multiply the branching factor, so even modest designs explode --
the paper's Appendix A observation (their SMT-BMC on Listing 2 fails to
find the violation at large depths because of the 32-bit counter's state
space; our explicit-state checker exhausts its budget the same way).
"""

from __future__ import annotations

import itertools
import time
from typing import Callable, List, Optional, Sequence, Tuple


class Assertion:
    """A named safety property over (prev_state, state)."""

    def __init__(self, name: str,
                 check: Callable[[Optional[dict], dict], bool]):
        self.name = name
        self.check = check

    def __repr__(self):
        return f"Assertion({self.name})"


class TransitionSystem:
    """An explicit transition system.

    * ``initial`` -- the initial state (dict of register values);
    * ``step(state, inputs) -> state`` -- the transition function;
    * ``input_space`` -- per-cycle free inputs: list of (name, domain).
    """

    def __init__(self, initial: dict,
                 step: Callable[[dict, dict], dict],
                 input_space: Sequence[Tuple[str, Sequence[int]]] = ()):
        self.initial = dict(initial)
        self.step = step
        self.input_space = list(input_space)

    def input_vectors(self) -> List[dict]:
        if not self.input_space:
            return [{}]
        names = [n for n, _ in self.input_space]
        domains = [d for _, d in self.input_space]
        return [dict(zip(names, combo))
                for combo in itertools.product(*domains)]


class BmcResult:
    def __init__(self, verdict: str, depth: int, states: int,
                 elapsed: float, trace: Optional[list] = None,
                 assertion: str = ""):
        self.verdict = verdict          # "violation" | "no_violation" | "budget"
        self.depth = depth
        self.states = states
        self.elapsed = elapsed
        self.trace = trace or []
        self.assertion = assertion

    @property
    def found_violation(self) -> bool:
        return self.verdict == "violation"

    def __repr__(self):
        return (
            f"BmcResult({self.verdict}, depth={self.depth}, "
            f"states={self.states}, {self.elapsed:.3f}s)"
        )


class BoundedModelChecker:
    """BFS over the reachable state space with budgets."""

    def __init__(self, system: TransitionSystem,
                 assertions: Sequence[Assertion],
                 max_depth: int = 64,
                 max_states: int = 100_000,
                 time_budget: float = 10.0):
        self.system = system
        self.assertions = list(assertions)
        self.max_depth = max_depth
        self.max_states = max_states
        self.time_budget = time_budget

    def run(self) -> BmcResult:
        t0 = time.time()
        start = self.system.initial
        frontier: List[Tuple[dict, Optional[dict], list]] = [
            (start, None, [])
        ]
        visited = {self._key(start)}
        explored = 0
        inputs = self.system.input_vectors()
        for depth in range(self.max_depth + 1):
            next_frontier = []
            for state, prev, trace in frontier:
                for a in self.assertions:
                    if not a.check(prev, state):
                        return BmcResult(
                            "violation", depth, explored,
                            time.time() - t0, trace + [state], a.name,
                        )
                for iv in inputs:
                    explored += 1
                    if explored > self.max_states:
                        return BmcResult(
                            "budget", depth, explored, time.time() - t0
                        )
                    if time.time() - t0 > self.time_budget:
                        return BmcResult(
                            "budget", depth, explored, time.time() - t0
                        )
                    new = self.system.step(dict(state), iv)
                    key = self._key(new)
                    if key not in visited:
                        visited.add(key)
                        next_frontier.append(
                            (new, state, trace + [state])
                        )
            if not next_frontier:
                return BmcResult(
                    "no_violation", depth, explored, time.time() - t0
                )
            frontier = next_frontier
        return BmcResult(
            "no_violation", self.max_depth, explored, time.time() - t0
        )

    @staticmethod
    def _key(state: dict):
        return tuple(sorted(state.items()))
