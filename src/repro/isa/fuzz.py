"""Differential fuzzing for the Y86-64 execution models.

:func:`generate_program` draws a random -- but always-terminating --
Y86 program from a seeded grammar: straight-line arithmetic, forward
branches, bounded countdown loops, balanced push/pop runs, calls to
leaf subroutines, loads/stores confined to a data region, and (with
small probability) a deliberately faulting tail that exercises the
ADR/INS stop paths.  Termination is by construction: every loop is a
countdown with a dedicated counter register no block body touches, every
branch is forward, and the call graph is ``main -> leaf``.

:func:`differential_check` assembles a program, runs the sequential
reference interpreter to get the golden :class:`ArchState`, then runs
the RTL pipeline under every requested engine (and optionally the Anvil
core under every requested backend) and asserts the final architectural
state -- registers, memory, condition codes, stop status, pc, retired
count -- is identical everywhere.  A mismatch raises
:class:`DifferentialMismatch` whose message carries the seed, the model
label, the field-by-field diff, and the full assembly listing, so a
failure is reproducible from the pytest output alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from .assembler import AssembledProgram, assemble
from .encoding import CC_SUFFIXES, OP_NAMES
from .reference import MEM_SIZE, ArchState, ReferenceMachine

#: engines the RTL pipeline is checked under by default
DEFAULT_ENGINES = ("brute", "levelized", "kernel")

#: scratch registers the generator draws from; %r13 is the loop
#: decrement constant and %r14 the loop counter, kept out of the pool so
#: loop trips stay bounded no matter what the body does
SCRATCH_REGS = ("rax", "rcx", "rdx", "rbx", "rbp", "rsi", "rdi",
                "r8", "r9", "r10", "r11", "r12")
LOOP_ONE, LOOP_COUNTER = "r13", "r14"


class DifferentialMismatch(AssertionError):
    """Two execution models disagreed on the final architectural state."""


@dataclass(frozen=True)
class FuzzResult:
    """One fuzz case that passed everywhere."""

    seed: int
    instret: int
    stat: int
    cycles: Dict[str, int]      # model label -> cycles to halt


class _Gen:
    def __init__(self, rng: random.Random, ndata: int):
        self.rng = rng
        self.ndata = ndata
        self.label_id = 0
        self.subs: list = []    # bodies of generated leaf subroutines

    def fresh(self, stem: str) -> str:
        self.label_id += 1
        return f"{stem}{self.label_id}"

    def reg(self) -> str:
        return self.rng.choice(SCRATCH_REGS)

    def imm(self) -> int:
        return self.rng.getrandbits(self.rng.choice((8, 16, 63, 64)))

    def arith(self) -> str:
        r = self.rng
        kind = r.randrange(4)
        if kind == 0:
            return f"    irmovq ${self.imm():#x}, %{self.reg()}"
        if kind == 1:
            return f"    {r.choice(OP_NAMES)} %{self.reg()}, %{self.reg()}"
        if kind == 2:
            return f"    rrmovq %{self.reg()}, %{self.reg()}"
        cc = r.choice(CC_SUFFIXES[1:])
        return f"    cmov{cc} %{self.reg()}, %{self.reg()}"

    def block_arith(self) -> list:
        return [self.arith() for _ in range(self.rng.randint(1, 4))]

    def block_mem(self) -> list:
        r = self.rng
        ptr = self.reg()
        out = [f"    irmovq data, %{ptr}"]
        for _ in range(r.randint(1, 3)):
            disp = 8 * r.randrange(self.ndata)
            if r.random() < 0.5:
                out.append(f"    mrmovq {disp}(%{ptr}), %{self.reg()}")
            else:
                src = self.reg()
                if src == ptr:      # never clobber the live pointer
                    out.append(f"    mrmovq {disp}(%{ptr}), %{ptr}")
                    break
                out.append(f"    rmmovq %{src}, {disp}(%{ptr})")
        return out

    def block_branch(self) -> list:
        r = self.rng
        lbl = self.fresh("fwd")
        cc = r.choice(("mp",) + CC_SUFFIXES[1:])   # "jmp" or a jCC
        out = [f"    {r.choice(OP_NAMES)} %{self.reg()}, %{self.reg()}",
               f"    j{cc} {lbl}"]
        out += [self.arith() for _ in range(r.randint(1, 3))]
        out.append(f"{lbl}:")
        return out

    def block_loop(self) -> list:
        r = self.rng
        lbl = self.fresh("lp")
        out = [f"    irmovq ${r.randint(1, 4)}, %{LOOP_COUNTER}",
               f"    irmovq $1, %{LOOP_ONE}",
               f"{lbl}:"]
        out += [self.arith() for _ in range(r.randint(1, 3))]
        out += [f"    subq %{LOOP_ONE}, %{LOOP_COUNTER}",
                f"    jne {lbl}"]
        return out

    def block_pushpop(self) -> list:
        r = self.rng
        depth = r.randint(1, 3)
        out = [f"    pushq %{self.reg()}" for _ in range(depth)]
        out += [f"    popq %{self.reg()}" for _ in range(depth)]
        return out

    def block_call(self) -> list:
        r = self.rng
        if not self.subs or (len(self.subs) < 3 and r.random() < 0.5):
            name = f"leaf{len(self.subs)}"
            body = [f"{name}:"]
            body += [self.arith() for _ in range(r.randint(2, 5))]
            body.append("    ret")
            self.subs.append(body)
        else:
            name = f"leaf{r.randrange(len(self.subs))}"
        return [f"    call {name}"]

    def fault_tail(self) -> list:
        r = self.rng
        kind = r.randrange(3)
        if kind == 0:               # illegal opcode byte -> INS
            return [f"    .byte {r.choice((0xC0, 0xD5, 0xFF, 0x28)):#x}"]
        if kind == 1:               # out-of-bounds load -> ADR
            ptr = self.reg()
            return [f"    irmovq ${r.randrange(MEM_SIZE, 1 << 16):#x}, "
                    f"%{ptr}",
                    f"    mrmovq (%{ptr}), %{self.reg()}"]
        # jump past the end of memory -> fetch ADR
        return [f"    jmp {r.randrange(MEM_SIZE, 1 << 16):#x}"]


def generate_program(seed: int, mem_size: int = MEM_SIZE) -> str:
    """One random, terminating ``.ys`` program for ``seed``."""
    rng = random.Random(seed)
    ndata = rng.randint(4, 10)
    g = _Gen(rng, ndata)
    body = []
    blocks = (g.block_arith, g.block_arith, g.block_arith, g.block_mem,
              g.block_mem, g.block_branch, g.block_branch, g.block_loop,
              g.block_call, g.block_pushpop)
    for _ in range(rng.randint(3, 8)):
        body += rng.choice(blocks)()
    if rng.random() < 0.2:
        body += g.fault_tail()
    lines = [
        f"# fuzz seed {seed}",
        "    irmovq stack, %rsp",
        "    call main",
        "    halt",
        "",
        ".align 8",
        "data:",
        *[f"    .quad {rng.getrandbits(64):#x}" for _ in range(ndata)],
        "",
        "main:",
        *body,
        "    ret",
        "",
        *[line for sub in g.subs for line in sub],
        "",
        f".pos {mem_size - 8:#x}",
        "stack:",
    ]
    return "\n".join(lines) + "\n"


def _mismatch(label: str, seed: Optional[int], prog: AssembledProgram,
              expected: ArchState, got: ArchState) -> DifferentialMismatch:
    return DifferentialMismatch(
        f"model {label!r} diverged from the ISA reference"
        + (f" (fuzz seed {seed})" if seed is not None else "")
        + "\n--- state diff (reference != model) ---\n"
        + expected.diff(got)
        + "\n--- reference ---\n" + expected.summary()
        + "\n--- assembly listing ---\n" + prog.listing()
    )


def differential_check(
    source: str,
    seed: Optional[int] = None,
    engines: Sequence[str] = DEFAULT_ENGINES,
    anvil_backends: Sequence[str] = (),
    mem_size: int = MEM_SIZE,
    max_steps: int = 50_000,
) -> FuzzResult:
    """Assert every execution model agrees on ``source``'s final state.

    Returns a :class:`FuzzResult` on success; raises
    :class:`DifferentialMismatch` (with a reproduction listing) on the
    first disagreement, or ``RuntimeError`` if a model fails to halt
    within its cycle budget.
    """
    from ..designs.y86 import (
        Y86PipelineCpu,
        anvil_arch_state,
        attach_anvil_y86,
        run_to_halt,
    )
    from ..rtl.simulator import Simulator

    prog = assemble(source)
    expected = ReferenceMachine(prog.image, mem_size=mem_size).run(
        max_steps=max_steps)
    cycles: Dict[str, int] = {}
    budget = 12 * expected.instret + 300
    for engine in engines:
        label = f"rtl/{engine}"
        sim = Simulator(f"y86_fuzz_{engine}", engine=engine)
        cpu = sim.add(Y86PipelineCpu("cpu", prog.image,
                                     mem_size=mem_size))
        cycles[label] = run_to_halt(sim, cpu, max_cycles=budget)
        got = cpu.arch_state()
        if got != expected:
            raise _mismatch(label, seed, prog, expected, got)
    for backend in anvil_backends:
        label = f"anvil/{backend}"
        sim = Simulator(f"y86_fuzz_anvil_{backend}")
        core, server, _host = attach_anvil_y86(
            sim, prog.image, backend=backend, mem_size=mem_size)
        start = sim.cycle
        while not core.regs["halted"]:
            if sim.cycle - start >= budget:
                raise RuntimeError(
                    f"{label} did not halt within {budget} cycles "
                    f"(fuzz seed {seed})")
            sim.run(min(256, budget - (sim.cycle - start)))
        cycles[label] = sim.cycle - start
        got = anvil_arch_state(core, server)
        if got != expected:
            raise _mismatch(label, seed, prog, expected, got)
    return FuzzResult(seed=seed if seed is not None else -1,
                      instret=expected.instret, stat=expected.stat,
                      cycles=cycles)


def run_fuzz(
    count: int,
    seed: int = 0,
    engines: Sequence[str] = DEFAULT_ENGINES,
    anvil_every: int = 0,
    mem_size: int = MEM_SIZE,
    batch: Optional[int] = None,
) -> Tuple[FuzzResult, ...]:
    """Run ``count`` generated programs; program ``i`` uses the derived
    seed ``seed * 1_000_003 + i`` so any failure names a standalone
    seed.  ``anvil_every = k`` additionally runs every ``k``-th program
    through the Anvil core (interp backend); 0 disables it.

    ``batch`` groups the RTL runs of up to that many programs into one
    lock-step batched kernel pass per engine, with each pipeline peeled
    out of the batch the cycle its ``halted`` wire rises (default: the
    ``REPRO_BATCH`` environment knob, else scalar).  ``engine="brute"``
    and the Anvil cases always run scalar -- brute is the semantic
    reference the batch is being held to.  Batched runs check the same
    architectural contract case by case; reported cycle counts are the
    exact halt cycles (the scalar path's chunked ``run_to_halt`` can
    overshoot), and a failing case surfaces engine-major rather than
    case-major.
    """
    if batch is None:
        from ..rtl.batch import _env_batch

        batch = _env_batch() or 1
    if batch > 1:
        return _run_fuzz_batched(count, seed, engines, anvil_every,
                                 mem_size, batch)
    results = []
    for i in range(count):
        case_seed = seed * 1_000_003 + i
        source = generate_program(case_seed, mem_size=mem_size)
        anvil = ("interp",) if anvil_every and i % anvil_every == 0 \
            else ()
        results.append(differential_check(
            source, seed=case_seed, engines=engines,
            anvil_backends=anvil, mem_size=mem_size))
    return tuple(results)


def _run_fuzz_batched(count: int, seed: int, engines: Sequence[str],
                      anvil_every: int, mem_size: int,
                      batch: int) -> Tuple[FuzzResult, ...]:
    """The lock-step body of :func:`run_fuzz`: every case's reference
    state first, then per engine the cases in batches of ``batch``
    pipelines advancing through one compiled kernel, each stopping on
    its own ``halted`` wire."""
    from ..designs.y86 import (
        Y86PipelineCpu,
        anvil_arch_state,
        attach_anvil_y86,
        run_to_halt,
    )
    from ..rtl.batch import StopCondition, run_lockstep
    from ..rtl.simulator import Simulator

    cases = []
    for i in range(count):
        case_seed = seed * 1_000_003 + i
        source = generate_program(case_seed, mem_size=mem_size)
        prog = assemble(source)
        expected = ReferenceMachine(prog.image, mem_size=mem_size).run(
            max_steps=50_000)
        cases.append((i, case_seed, prog, expected,
                      12 * expected.instret + 300))

    cycles_by_case: list = [dict() for _ in range(count)]
    for engine in engines:
        label = f"rtl/{engine}"
        if engine == "brute":
            for i, case_seed, prog, expected, budget in cases:
                sim = Simulator(f"y86_fuzz_{engine}", engine=engine)
                cpu = sim.add(Y86PipelineCpu("cpu", prog.image,
                                             mem_size=mem_size))
                cycles_by_case[i][label] = run_to_halt(
                    sim, cpu, max_cycles=budget)
                got = cpu.arch_state()
                if got != expected:
                    raise _mismatch(label, case_seed, prog, expected, got)
            continue
        for at in range(0, count, batch):
            group = cases[at:at + batch]
            sims, cpus = [], []
            for i, _case_seed, prog, _expected, _budget in group:
                sim = Simulator(f"y86_fuzz_{engine}_{i}", engine=engine)
                cpus.append(sim.add(Y86PipelineCpu(
                    "cpu", prog.image, mem_size=mem_size)))
                sims.append(sim)
            stop = StopCondition("nonzero", [c.halted_w for c in cpus])
            horizon = max(budget for *_rest, budget in group)
            res = run_lockstep(sims, horizon, stop=stop, width=batch)
            for k, (i, case_seed, prog, expected, budget) in \
                    enumerate(group):
                if not (res.stopped[k] and res.cycles[k] <= budget):
                    raise RuntimeError(
                        f"{label} did not halt within {budget} cycles "
                        f"(fuzz seed {case_seed})")
                got = cpus[k].arch_state()
                if got != expected:
                    raise _mismatch(label, case_seed, prog, expected, got)
                cycles_by_case[i][label] = res.cycles[k]

    # the Anvil core is a different execution model entirely (typed
    # channels over the FSM backends); its differential cases stay
    # scalar, exactly as in differential_check
    if anvil_every:
        label = "anvil/interp"
        for i, case_seed, prog, expected, budget in cases:
            if i % anvil_every:
                continue
            sim = Simulator("y86_fuzz_anvil_interp")
            core, server, _host = attach_anvil_y86(
                sim, prog.image, backend="interp", mem_size=mem_size)
            start = sim.cycle
            while not core.regs["halted"]:
                if sim.cycle - start >= budget:
                    raise RuntimeError(
                        f"{label} did not halt within {budget} cycles "
                        f"(fuzz seed {case_seed})")
                sim.run(min(256, budget - (sim.cycle - start)))
            cycles_by_case[i][label] = sim.cycle - start
            got = anvil_arch_state(core, server)
            if got != expected:
                raise _mismatch(label, case_seed, prog, expected, got)

    return tuple(
        FuzzResult(seed=case_seed, instret=expected.instret,
                   stat=expected.stat, cycles=cycles_by_case[i])
        for i, case_seed, _prog, expected, _budget in cases
    )
