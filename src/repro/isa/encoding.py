"""Y86-64 instruction encodings (the CSAPP subset).

An instruction is 1-10 bytes: one opcode byte (``icode:ifun`` nibbles),
an optional register byte (``rA:rB`` nibbles) and an optional 8-byte
little-endian constant.  Register id ``0xF`` (``RNONE``) means "no
register"; every execution model in this repo reads it as zero and
discards writes to it, so decode never has to special-case unused
fields.
"""

from __future__ import annotations

from dataclasses import dataclass

# -- instruction codes -------------------------------------------------
IHALT = 0x0
INOP = 0x1
IRRMOVQ = 0x2   # also cmovXX: the ifun selects the condition
IIRMOVQ = 0x3
IRMMOVQ = 0x4
IMRMOVQ = 0x5
IOPQ = 0x6      # addq / subq / andq / xorq
IJXX = 0x7      # jmp / jle / jl / je / jne / jge / jg
ICALL = 0x8
IRET = 0x9
IPUSHQ = 0xA
IPOPQ = 0xB

# -- registers ---------------------------------------------------------
REG_NAMES = (
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14",
)
REG_IDS = {name: i for i, name in enumerate(REG_NAMES)}
RSP = REG_IDS["rsp"]
RNONE = 0xF

# -- function codes ----------------------------------------------------
OP_NAMES = ("addq", "subq", "andq", "xorq")
FN_ADD, FN_SUB, FN_AND, FN_XOR = range(4)
CC_SUFFIXES = ("", "le", "l", "e", "ne", "ge", "g")

# -- status codes (shared by every execution model) --------------------
SAOK = 1    # normal operation
SHLT = 2    # halt executed
SADR = 3    # invalid memory (or fetch) address
SINS = 4    # invalid instruction
STAT_NAMES = {SAOK: "AOK", SHLT: "HLT", SADR: "ADR", SINS: "INS"}

U64 = (1 << 64) - 1

#: highest legal ifun per icode; absent icode = illegal instruction
MAX_IFUN = {
    IHALT: 0, INOP: 0, IRRMOVQ: 6, IIRMOVQ: 0, IRMMOVQ: 0, IMRMOVQ: 0,
    IOPQ: 3, IJXX: 6, ICALL: 0, IRET: 0, IPUSHQ: 0, IPOPQ: 0,
}

_REGID_ICODES = frozenset(
    (IRRMOVQ, IIRMOVQ, IRMMOVQ, IMRMOVQ, IOPQ, IPUSHQ, IPOPQ))
_VALC_ICODES = frozenset((IIRMOVQ, IRMMOVQ, IMRMOVQ, IJXX, ICALL))


def needs_regids(icode: int) -> bool:
    return icode in _REGID_ICODES


def needs_valc(icode: int) -> bool:
    return icode in _VALC_ICODES


def insn_size(icode: int) -> int:
    """Encoded byte length of an instruction with this icode."""
    return 1 + (1 if needs_regids(icode) else 0) \
        + (8 if needs_valc(icode) else 0)


def valid_instruction(icode: int, ifun: int) -> bool:
    return icode in MAX_IFUN and 0 <= ifun <= MAX_IFUN[icode]


def mnemonic(icode: int, ifun: int) -> str:
    if icode == IRRMOVQ:
        return "rrmovq" if ifun == 0 else f"cmov{CC_SUFFIXES[ifun]}"
    if icode == IJXX:
        return "jmp" if ifun == 0 else f"j{CC_SUFFIXES[ifun]}"
    if icode == IOPQ:
        return OP_NAMES[ifun]
    return {
        IHALT: "halt", INOP: "nop", IIRMOVQ: "irmovq", IRMMOVQ: "rmmovq",
        IMRMOVQ: "mrmovq", ICALL: "call", IRET: "ret", IPUSHQ: "pushq",
        IPOPQ: "popq",
    }[icode]


@dataclass(frozen=True)
class Instruction:
    """One decoded (or to-be-encoded) Y86-64 instruction."""

    icode: int
    ifun: int = 0
    ra: int = RNONE
    rb: int = RNONE
    valc: int = 0

    @property
    def size(self) -> int:
        return insn_size(self.icode)

    @property
    def mnemonic(self) -> str:
        return mnemonic(self.icode, self.ifun)


def encode(ins: Instruction) -> bytes:
    """Object bytes of ``ins`` (inverse of :func:`decode`)."""
    if not valid_instruction(ins.icode, ins.ifun):
        raise ValueError(
            f"cannot encode invalid instruction "
            f"icode={ins.icode:#x} ifun={ins.ifun:#x}"
        )
    out = bytearray([(ins.icode << 4) | ins.ifun])
    if needs_regids(ins.icode):
        out.append((ins.ra << 4) | ins.rb)
    if needs_valc(ins.icode):
        out.extend((ins.valc & U64).to_bytes(8, "little"))
    return bytes(out)


def decode(blob: bytes, offset: int = 0) -> Instruction:
    """Decode one instruction at ``offset``; raises :class:`ValueError`
    on an illegal opcode byte or a truncated encoding."""
    if offset >= len(blob):
        raise ValueError(f"decode past end of object code ({offset:#x})")
    byte0 = blob[offset]
    icode, ifun = byte0 >> 4, byte0 & 0xF
    if not valid_instruction(icode, ifun):
        raise ValueError(
            f"illegal instruction byte {byte0:#04x} at {offset:#x}"
        )
    size = insn_size(icode)
    if offset + size > len(blob):
        raise ValueError(
            f"truncated {mnemonic(icode, ifun)} at {offset:#x}"
        )
    ra = rb = RNONE
    pos = offset + 1
    if needs_regids(icode):
        ra, rb = blob[pos] >> 4, blob[pos] & 0xF
        pos += 1
    valc = 0
    if needs_valc(icode):
        valc = int.from_bytes(blob[pos:pos + 8], "little")
    return Instruction(icode=icode, ifun=ifun, ra=ra, rb=rb, valc=valc)


def _reg(rid: int) -> str:
    return f"%{REG_NAMES[rid]}" if rid < len(REG_NAMES) else "%none"


def format_instruction(ins: Instruction) -> str:
    """AT&T-style rendering, used by listings and fuzz failure reports."""
    m = ins.mnemonic
    if ins.icode in (IHALT, INOP, IRET):
        return m
    if ins.icode == IRRMOVQ or ins.icode == IOPQ:
        return f"{m} {_reg(ins.ra)}, {_reg(ins.rb)}"
    if ins.icode == IIRMOVQ:
        return f"{m} ${ins.valc:#x}, {_reg(ins.rb)}"
    if ins.icode == IRMMOVQ:
        return f"{m} {_reg(ins.ra)}, {ins.valc:#x}({_reg(ins.rb)})"
    if ins.icode == IMRMOVQ:
        return f"{m} {ins.valc:#x}({_reg(ins.rb)}), {_reg(ins.ra)}"
    if ins.icode in (IJXX, ICALL):
        return f"{m} {ins.valc:#x}"
    return f"{m} {_reg(ins.ra)}"   # pushq / popq
