"""Bundled Y86-64 workloads: sum loop, bubble sort, memcpy.

Each generator returns ``.ys`` source text parameterized by the data
quads, so scenario builders can seed the arrays deterministically.  The
sum loop follows the CSAPP worked listing byte for byte when given the
book's four quads (``tests/test_y86_isa.py`` pins that), the sort is a
signed bubble sort over adjacent pairs, and memcpy copies then
checksums.  Every program ends in ``halt`` with the result in ``%rax``
(sum/checksum) or in memory (sort).
"""

from __future__ import annotations

from typing import List, Sequence

from .encoding import U64
from .reference import MEM_SIZE

#: the four quads of the CSAPP worked example (SNIPPETS item 3)
CSAPP_QUADS = (0x000D000D000D, 0x00C000C000C0, 0x0B000B000B00,
               0xA000A000A000)


def _quads(values: Sequence[int]) -> List[str]:
    return [f"    .quad {v & U64:#x}" for v in values]


def _stack_pos(mem_size: int) -> int:
    # the bundled programs nest at most two calls; leave head-room for
    # eight pushes below the stack label and keep every byte in bounds
    return mem_size - 8


def sum_program(values: Sequence[int], mem_size: int = MEM_SIZE) -> str:
    """``%rax = sum(values)`` -- the CSAPP sum loop over an array."""
    lines = [
        "# CSAPP sum loop",
        "    irmovq stack, %rsp",
        "    call main",
        "    halt",
        "",
        ".align 8",
        "array:",
        *_quads(values),
        "",
        "main:",
        "    irmovq array, %rdi",
        f"    irmovq ${len(values)}, %rsi",
        "    call sum",
        "    ret",
        "",
        "# sum(start in %rdi, count in %rsi), result in %rax",
        "sum:",
        "    irmovq $8, %r8",
        "    irmovq $1, %r9",
        "    xorq %rax, %rax",
        "    andq %rsi, %rsi",
        "    jmp test",
        "loop:",
        "    mrmovq (%rdi), %r10",
        "    addq %r10, %rax",
        "    addq %r8, %rdi",
        "    subq %r9, %rsi",
        "test:",
        "    jne loop",
        "    ret",
        "",
        f".pos {_stack_pos(mem_size):#x}",
        "stack:",
    ]
    return "\n".join(lines) + "\n"


def bubble_sort_program(values: Sequence[int],
                        mem_size: int = MEM_SIZE) -> str:
    """In-place signed bubble sort of the quads at ``array``."""
    lines = [
        "# bubble sort (signed, adjacent-pair sweeps)",
        "    irmovq stack, %rsp",
        "    call main",
        "    halt",
        "",
        ".align 8",
        "array:",
        *_quads(values),
        "",
        "main:",
        "    irmovq array, %rdi",
        f"    irmovq ${len(values)}, %rsi",
        "    call sort",
        "    ret",
        "",
        "# sort(base in %rdi, count in %rsi)",
        "sort:",
        "    irmovq $1, %r9",
        "    irmovq $8, %r8",
        "    subq %r9, %rsi       # n-1 passes",
        "    je sdone",
        "pass:",
        "    rrmovq %rdi, %rdx    # p = base",
        "    rrmovq %rsi, %rcx    # pairs left this sweep",
        "sweep:",
        "    mrmovq (%rdx), %rax",
        "    mrmovq 8(%rdx), %rbx",
        "    rrmovq %rbx, %r10",
        "    subq %rax, %r10      # b - a",
        "    jge keep             # already ordered (signed)",
        "    rmmovq %rbx, (%rdx)",
        "    rmmovq %rax, 8(%rdx)",
        "keep:",
        "    addq %r8, %rdx",
        "    subq %r9, %rcx",
        "    jne sweep",
        "    subq %r9, %rsi",
        "    jne pass",
        "sdone:",
        "    ret",
        "",
        f".pos {_stack_pos(mem_size):#x}",
        "stack:",
    ]
    return "\n".join(lines) + "\n"


def memcpy_program(values: Sequence[int],
                   mem_size: int = MEM_SIZE) -> str:
    """Copy the quads from ``src`` to ``dst`` and checksum into
    ``%rax``."""
    lines = [
        "# memcpy + checksum",
        "    irmovq stack, %rsp",
        "    call main",
        "    halt",
        "",
        ".align 8",
        "src:",
        *_quads(values),
        "dst:",
        *["    .quad 0" for _ in values],
        "",
        "main:",
        "    irmovq src, %rdi",
        "    irmovq dst, %rsi",
        f"    irmovq ${len(values)}, %rdx",
        "    call copy",
        "    ret",
        "",
        "# copy(src in %rdi, dst in %rsi, count in %rdx)",
        "copy:",
        "    irmovq $8, %r8",
        "    irmovq $1, %r9",
        "    xorq %rax, %rax",
        "    andq %rdx, %rdx",
        "    je cdone",
        "cloop:",
        "    mrmovq (%rdi), %r10",
        "    rmmovq %r10, (%rsi)",
        "    addq %r10, %rax",
        "    addq %r8, %rdi",
        "    addq %r8, %rsi",
        "    subq %r9, %rdx",
        "    jne cloop",
        "cdone:",
        "    ret",
        "",
        f".pos {_stack_pos(mem_size):#x}",
        "stack:",
    ]
    return "\n".join(lines) + "\n"


#: name -> generator, the registry the scenarios and tests iterate
BUNDLED = {
    "sum": sum_program,
    "sort": bubble_sort_program,
    "memcpy": memcpy_program,
}
