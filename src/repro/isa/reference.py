"""Sequential ISA-level Y86-64 interpreter: the golden model.

One :meth:`ReferenceMachine.step` executes one architectural
instruction; the final :class:`ArchState` (registers, memory, condition
codes, stop status, stop pc, retired-instruction count) is the value
every pipelined implementation must reproduce exactly.  The fault
semantics are deliberately spelled out in one place -- the RTL pipeline
(:mod:`repro.designs.y86`) and the Anvil core
(:mod:`repro.anvil_designs.y86`) implement the *same* contract in their
own substrates:

* fetch checks, in order: ``pc`` in bounds (ADR), legal icode/ifun
  (INS), whole encoding in bounds (ADR), then halt (HLT);
* data accesses are 8-byte, byte-aligned allowed, and fault (ADR) when
  ``addr > mem_size - 8`` as an *unsigned* 64-bit comparison;
* register id ``0xF`` reads zero and discards writes;
* ``popq %rA`` writes ``rsp+8`` to ``rsp`` first, then ``valM`` to
  ``rA`` (so ``popq %rsp`` leaves the popped value in ``%rsp``);
* a faulting instruction makes no architectural updates and leaves
  ``pc`` at its own address; condition codes change only on ``OPq``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .encoding import (
    FN_ADD,
    FN_AND,
    FN_SUB,
    ICALL,
    IHALT,
    IIRMOVQ,
    IJXX,
    IMRMOVQ,
    INOP,
    IOPQ,
    IPOPQ,
    IPUSHQ,
    IRET,
    IRMMOVQ,
    IRRMOVQ,
    RNONE,
    RSP,
    SADR,
    SAOK,
    SHLT,
    SINS,
    STAT_NAMES,
    U64,
    insn_size,
    needs_regids,
    needs_valc,
    valid_instruction,
)

#: default flat memory size shared by every Y86 execution model
MEM_SIZE = 4096


def alu(fn: int, vala: int, valb: int) -> Tuple[int, int, int, int]:
    """``valb OP vala`` plus the ZF/SF/OF triple the operation produces
    (the single arithmetic contract shared by all three models)."""
    if fn == FN_ADD:
        vale = (valb + vala) & U64
        of = ((~(vala ^ valb) & (vala ^ vale)) >> 63) & 1
    elif fn == FN_SUB:
        vale = (valb - vala) & U64
        of = (((vala ^ valb) & (valb ^ vale)) >> 63) & 1
    elif fn == FN_AND:
        vale, of = valb & vala, 0
    else:
        vale, of = valb ^ vala, 0
    return vale, int(vale == 0), (vale >> 63) & 1, of


def cond(ifun: int, zf: int, sf: int, of: int) -> int:
    """Branch/cmov condition for ``ifun`` against the CC triple."""
    sxo = sf ^ of
    return (1, sxo | zf, sxo, zf, 1 - zf, 1 - sxo,
            (1 - sxo) & (1 - zf))[ifun]


@dataclass(frozen=True)
class ArchState:
    """Final architectural state, the unit of differential comparison."""

    registers: Tuple[int, ...]   # %rax .. %r14 (15 entries)
    zf: int
    sf: int
    of: int
    pc: int                      # address of the stopping instruction
    stat: int                    # SHLT / SADR / SINS (SAOK = still running)
    instret: int                 # attempted steps, including the stopper
    memory: bytes

    def summary(self) -> str:
        from .encoding import REG_NAMES
        regs = ", ".join(
            f"%{REG_NAMES[i]}={v:#x}"
            for i, v in enumerate(self.registers) if v
        ) or "(all zero)"
        return (
            f"stat={STAT_NAMES.get(self.stat, self.stat)} pc={self.pc:#x} "
            f"instret={self.instret} ZF={self.zf} SF={self.sf} "
            f"OF={self.of}\n  {regs}"
        )

    def diff(self, other: "ArchState") -> str:
        """Human-readable field-by-field mismatch listing ('' if equal)."""
        from .encoding import REG_NAMES
        lines = []
        for i in range(15):
            if self.registers[i] != other.registers[i]:
                lines.append(
                    f"%{REG_NAMES[i]}: {self.registers[i]:#x} != "
                    f"{other.registers[i]:#x}")
        for name in ("zf", "sf", "of", "pc", "stat", "instret"):
            a, b = getattr(self, name), getattr(other, name)
            if a != b:
                lines.append(f"{name}: {a:#x} != {b:#x}")
        if self.memory != other.memory:
            for addr in range(0, min(len(self.memory), len(other.memory))):
                if self.memory[addr] != other.memory[addr]:
                    lines.append(
                        f"mem[{addr:#x}]: {self.memory[addr]:#04x} != "
                        f"{other.memory[addr]:#04x}")
                    if len(lines) > 24:
                        lines.append("... (more memory differences)")
                        break
        return "\n".join(lines)


class ReferenceMachine:
    """The sequential interpreter.  ``step()`` returns the post-step
    stat; ``run()`` steps to a stop (or raises after ``max_steps``)."""

    def __init__(self, program: bytes, mem_size: int = MEM_SIZE):
        if len(program) > mem_size:
            raise ValueError(
                f"program ({len(program)} bytes) exceeds memory "
                f"({mem_size} bytes)")
        self.mem_size = mem_size
        self.memory = bytearray(mem_size)
        self.memory[:len(program)] = program
        self.registers = [0] * 16          # index 15 = RNONE, always 0
        self.zf, self.sf, self.of = 1, 0, 0
        self.pc = 0
        self.stat = SAOK
        self.instret = 0

    # -- memory helpers ------------------------------------------------
    def _rd8(self, addr: int) -> int:
        return int.from_bytes(self.memory[addr:addr + 8], "little")

    def _wr8(self, addr: int, value: int) -> None:
        self.memory[addr:addr + 8] = (value & U64).to_bytes(8, "little")

    def _mem_ok(self, addr: int) -> bool:
        return addr <= self.mem_size - 8    # addr is unsigned 64-bit

    def _rget(self, rid: int) -> int:
        return self.registers[rid] if rid != RNONE else 0

    def _rset(self, rid: int, value: int) -> None:
        if rid != RNONE:
            self.registers[rid] = value & U64

    def _stop(self, stat: int) -> int:
        self.stat = stat
        self.instret += 1
        return stat

    # -- execution -----------------------------------------------------
    def step(self) -> int:
        if self.stat != SAOK:
            return self.stat
        pc = self.pc
        # fetch, with the shared classification order
        if pc > self.mem_size - 1:
            return self._stop(SADR)
        byte0 = self.memory[pc]
        icode, ifun = byte0 >> 4, byte0 & 0xF
        if not valid_instruction(icode, ifun):
            return self._stop(SINS)
        size = insn_size(icode)
        if pc + size > self.mem_size:
            return self._stop(SADR)
        if icode == IHALT:
            return self._stop(SHLT)
        pos = pc + 1
        ra = rb = RNONE
        if needs_regids(icode):
            ra, rb = self.memory[pos] >> 4, self.memory[pos] & 0xF
            pos += 1
        valc = self._rd8(pos) if needs_valc(icode) else 0
        valp = pc + size

        if icode == INOP:
            self.pc = valp
        elif icode == IRRMOVQ:
            if cond(ifun, self.zf, self.sf, self.of):
                self._rset(rb, self._rget(ra))
            self.pc = valp
        elif icode == IIRMOVQ:
            self._rset(rb, valc)
            self.pc = valp
        elif icode == IRMMOVQ:
            addr = (self._rget(rb) + valc) & U64
            if not self._mem_ok(addr):
                return self._stop(SADR)
            self._wr8(addr, self._rget(ra))
            self.pc = valp
        elif icode == IMRMOVQ:
            addr = (self._rget(rb) + valc) & U64
            if not self._mem_ok(addr):
                return self._stop(SADR)
            self._rset(ra, self._rd8(addr))
            self.pc = valp
        elif icode == IOPQ:
            vale, self.zf, self.sf, self.of = alu(
                ifun, self._rget(ra), self._rget(rb))
            self._rset(rb, vale)
            self.pc = valp
        elif icode == IJXX:
            self.pc = valc if cond(ifun, self.zf, self.sf, self.of) \
                else valp
        elif icode == ICALL:
            addr = (self._rget(RSP) - 8) & U64
            if not self._mem_ok(addr):
                return self._stop(SADR)
            self._wr8(addr, valp)
            self._rset(RSP, addr)
            self.pc = valc
        elif icode == IRET:
            addr = self._rget(RSP)
            if not self._mem_ok(addr):
                return self._stop(SADR)
            valm = self._rd8(addr)
            self._rset(RSP, addr + 8)
            self.pc = valm
        elif icode == IPUSHQ:
            vala = self._rget(ra)
            addr = (self._rget(RSP) - 8) & U64
            if not self._mem_ok(addr):
                return self._stop(SADR)
            self._wr8(addr, vala)
            self._rset(RSP, addr)
            self.pc = valp
        elif icode == IPOPQ:
            addr = self._rget(RSP)
            if not self._mem_ok(addr):
                return self._stop(SADR)
            valm = self._rd8(addr)
            self._rset(RSP, addr + 8)   # dstE first ...
            self._rset(ra, valm)        # ... then dstM wins
            self.pc = valp
        self.instret += 1
        return self.stat

    def run(self, max_steps: int = 100_000) -> ArchState:
        for _ in range(max_steps):
            if self.step() != SAOK:
                return self.arch_state()
        raise RuntimeError(
            f"reference machine did not stop within {max_steps} steps "
            f"(pc={self.pc:#x})")

    def arch_state(self) -> ArchState:
        return ArchState(
            registers=tuple(self.registers[:15]),
            zf=self.zf, sf=self.sf, of=self.of,
            pc=self.pc, stat=self.stat, instret=self.instret,
            memory=bytes(self.memory),
        )
