"""Y86-64 instruction-set layer: encodings, assembler, reference model.

The package is the architectural ground truth for the Y86 CPU workload
family:

* :mod:`repro.isa.encoding` -- instruction formats, register/opcode
  tables, byte-level encode/decode;
* :mod:`repro.isa.assembler` -- a two-pass assembler for the CSAPP
  ``.ys`` dialect (labels, ``.pos``/``.align``/``.quad`` directives);
* :mod:`repro.isa.reference` -- the sequential ISA-level interpreter
  whose final :class:`~repro.isa.reference.ArchState` is the golden
  model every pipelined implementation is differenced against;
* :mod:`repro.isa.programs` -- bundled workloads (sum loop, bubble
  sort, memcpy) used as scenario stimulus;
* :mod:`repro.isa.fuzz` -- the seeded random-program generator and the
  differential runner behind ``tests/test_y86_fuzz.py``.
"""

from .assembler import AssembledProgram, AssemblyError, assemble
from .encoding import (
    Instruction,
    decode,
    encode,
    format_instruction,
    insn_size,
    valid_instruction,
)
from .reference import MEM_SIZE, ArchState, ReferenceMachine

__all__ = [
    "AssembledProgram",
    "AssemblyError",
    "ArchState",
    "Instruction",
    "MEM_SIZE",
    "ReferenceMachine",
    "assemble",
    "decode",
    "encode",
    "format_instruction",
    "insn_size",
    "valid_instruction",
]
