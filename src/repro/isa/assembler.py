"""A two-pass assembler for the CSAPP ``.ys`` dialect.

Supported syntax::

    label:                    # labels (may share a line with a statement)
    .pos 0x200                # set the location counter
    .align 8                  # round the location counter up
    .quad 0xabcd              # 8-byte little-endian datum (also .byte,
    .quad label               # .word, .long); labels resolve to addresses
    irmovq $7, %rax           # immediates: $N or $label or a bare label
    irmovq stack, %rsp
    mrmovq 8(%rdi), %r10      # displacement and/or base both optional
    rmmovq %rax, (%rsp)
    addq %rsi, %rdi           # addq/subq/andq/xorq
    jne loop                  # jmp/jle/jl/je/jne/jge/jg, call: label or N
    rrmovq %rax, %rbx         # plus cmovle/cmovl/cmove/cmovne/cmovge/cmovg
    pushq %rax
    halt                      # halt / nop / ret

Comments start with ``#`` (or ``//``).  Pass one sizes every statement
and collects labels; pass two emits bytes into a flat image whose length
is the highest address written.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .encoding import (
    CC_SUFFIXES,
    ICALL,
    IHALT,
    IIRMOVQ,
    IJXX,
    IMRMOVQ,
    INOP,
    IOPQ,
    IPOPQ,
    IPUSHQ,
    IRET,
    IRMMOVQ,
    IRRMOVQ,
    OP_NAMES,
    REG_IDS,
    RNONE,
    U64,
    Instruction,
    encode,
    insn_size,
)


class AssemblyError(Exception):
    """Source-level assembly failure; the message carries the line."""


#: mnemonic -> (icode, ifun, operand shape)
#: shapes: none, rr (reg,reg), ir (imm,reg), rm (reg,mem), mr (mem,reg),
#:         r (reg), dest (label/addr)
_MNEMONICS: Dict[str, Tuple[int, int, str]] = {
    "halt": (IHALT, 0, "none"),
    "nop": (INOP, 0, "none"),
    "rrmovq": (IRRMOVQ, 0, "rr"),
    "irmovq": (IIRMOVQ, 0, "ir"),
    "rmmovq": (IRMMOVQ, 0, "rm"),
    "mrmovq": (IMRMOVQ, 0, "mr"),
    "call": (ICALL, 0, "dest"),
    "ret": (IRET, 0, "none"),
    "pushq": (IPUSHQ, 0, "r"),
    "popq": (IPOPQ, 0, "r"),
    "jmp": (IJXX, 0, "dest"),
}
for _i, _op in enumerate(OP_NAMES):
    _MNEMONICS[_op] = (IOPQ, _i, "rr")
for _i, _cc in enumerate(CC_SUFFIXES[1:], start=1):
    _MNEMONICS[f"j{_cc}"] = (IJXX, _i, "dest")
    _MNEMONICS[f"cmov{_cc}"] = (IRRMOVQ, _i, "rr")

_DATA_SIZES = {".byte": 1, ".word": 2, ".long": 4, ".quad": 8}


@dataclass
class AssembledProgram:
    """Assembler output: the flat object image plus listing metadata."""

    source: str
    image: bytes
    symbols: Dict[str, int]
    #: (address, object bytes, source line) per emitting statement
    lines: List[Tuple[int, bytes, str]] = field(default_factory=list)

    def listing(self) -> str:
        """A yas-style listing: ``0x00a: 803800... | call main``."""
        out = []
        for addr, blob, src in self.lines:
            hexpart = blob.hex()
            out.append(f"{addr:#05x}: {hexpart:<20s} | {src}")
        return "\n".join(out)


def _parse_int(token: str, line_no: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(
            f"line {line_no}: bad number {token!r}"
        ) from None


def _parse_reg(token: str, line_no: int) -> int:
    token = token.strip()
    if not token.startswith("%") or token[1:] not in REG_IDS:
        raise AssemblyError(f"line {line_no}: bad register {token!r}")
    return REG_IDS[token[1:]]


def _split_operands(rest: str) -> List[str]:
    return [op.strip() for op in rest.split(",")] if rest.strip() else []


@dataclass
class _Stmt:
    addr: int
    kind: str            # "insn" | "data"
    line_no: int
    src: str
    # insn fields
    icode: int = 0
    ifun: int = 0
    operands: List[str] = field(default_factory=list)
    shape: str = "none"
    # data fields
    width: int = 0
    value: str = ""


def _resolve(token: str, symbols: Dict[str, int], line_no: int) -> int:
    """A numeric literal or a label, with an optional leading ``$``."""
    token = token.strip()
    if token.startswith("$"):
        token = token[1:]
    if token.lstrip("+-")[:1].isdigit():
        return _parse_int(token, line_no)
    if token in symbols:
        return symbols[token]
    raise AssemblyError(f"line {line_no}: undefined symbol {token!r}")


def _parse_mem(token: str, symbols: Dict[str, int],
               line_no: int) -> Tuple[int, int]:
    """``D(%rB)`` / ``(%rB)`` / ``D`` -> (displacement, base register)."""
    token = token.strip()
    if token.endswith(")"):
        head, _, inner = token[:-1].partition("(")
        base = _parse_reg(inner, line_no)
        disp = _resolve(head, symbols, line_no) if head.strip() else 0
        return disp, base
    return _resolve(token, symbols, line_no), RNONE


def _strip_comment(line: str) -> str:
    for marker in ("#", "//"):
        idx = line.find(marker)
        if idx >= 0:
            line = line[:idx]
    return line.replace("\t", " ").strip()


def assemble(source: str) -> AssembledProgram:
    """Assemble ``source`` into a flat little-endian object image."""
    symbols: Dict[str, int] = {}
    stmts: List[_Stmt] = []
    lc = 0

    # -- pass one: layout ----------------------------------------------
    for line_no, raw in enumerate(source.splitlines(), start=1):
        text = _strip_comment(raw)
        while text:
            head, sep, rest = text.partition(":")
            if sep and " " not in head and "\t" not in head \
                    and not head.startswith(".") and head not in _MNEMONICS:
                label = head.strip()
                if not label.isidentifier():
                    raise AssemblyError(
                        f"line {line_no}: bad label {label!r}")
                if label in symbols:
                    raise AssemblyError(
                        f"line {line_no}: duplicate label {label!r}")
                symbols[label] = lc
                text = rest.strip()
                continue
            break
        if not text:
            continue
        word, _, rest = text.partition(" ")
        word = word.strip()
        if word == ".pos":
            lc = _parse_int(rest.strip(), line_no)
        elif word == ".align":
            step = _parse_int(rest.strip(), line_no)
            if step <= 0:
                raise AssemblyError(f"line {line_no}: bad .align {step}")
            lc = (lc + step - 1) // step * step
        elif word in _DATA_SIZES:
            width = _DATA_SIZES[word]
            stmts.append(_Stmt(addr=lc, kind="data", line_no=line_no,
                               src=text, width=width, value=rest.strip()))
            lc += width
        elif word in _MNEMONICS:
            icode, ifun, shape = _MNEMONICS[word]
            stmts.append(_Stmt(addr=lc, kind="insn", line_no=line_no,
                               src=text, icode=icode, ifun=ifun,
                               shape=shape,
                               operands=_split_operands(rest)))
            lc += insn_size(icode)
        else:
            raise AssemblyError(
                f"line {line_no}: unknown mnemonic or directive {word!r}")

    # -- pass two: emission --------------------------------------------
    emitted: List[Tuple[int, bytes, str]] = []
    top = 0
    for st in stmts:
        if st.kind == "data":
            value = _resolve(st.value, symbols, st.line_no)
            blob = (value & ((1 << (8 * st.width)) - 1)).to_bytes(
                st.width, "little")
        else:
            blob = _encode_stmt(st, symbols)
        emitted.append((st.addr, blob, st.src))
        top = max(top, st.addr + len(blob))

    image = bytearray(top)
    for addr, blob, _src in emitted:
        image[addr:addr + len(blob)] = blob
    return AssembledProgram(source=source, image=bytes(image),
                            symbols=dict(symbols), lines=emitted)


def _encode_stmt(st: _Stmt, symbols: Dict[str, int]) -> bytes:
    ops, n = st.operands, st.line_no

    def arity(expected: int):
        if len(ops) != expected:
            raise AssemblyError(
                f"line {n}: {st.src.split()[0]} takes {expected} "
                f"operand(s), got {len(ops)}")

    ra, rb, valc = RNONE, RNONE, 0
    if st.shape == "none":
        arity(0)
    elif st.shape == "rr":
        arity(2)
        ra, rb = _parse_reg(ops[0], n), _parse_reg(ops[1], n)
    elif st.shape == "ir":
        arity(2)
        valc, rb = _resolve(ops[0], symbols, n), _parse_reg(ops[1], n)
    elif st.shape == "rm":
        arity(2)
        ra = _parse_reg(ops[0], n)
        valc, rb = _parse_mem(ops[1], symbols, n)
    elif st.shape == "mr":
        arity(2)
        valc, rb = _parse_mem(ops[0], symbols, n)
        ra = _parse_reg(ops[1], n)
    elif st.shape == "r":
        arity(1)
        ra = _parse_reg(ops[0], n)
    elif st.shape == "dest":
        arity(1)
        valc = _resolve(ops[0], symbols, n)
    return encode(Instruction(icode=st.icode, ifun=st.ifun, ra=ra, rb=rb,
                              valc=valc & U64))
